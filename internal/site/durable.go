package site

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"irisnet/internal/fragment"
	"irisnet/internal/naming"
	"irisnet/internal/wal"
	"irisnet/internal/xmldb"
)

// Per-site durability (DESIGN.md §16). When Config.DataDir is set, every
// committed copy-on-write transaction appends one CRC-framed record to a
// write-ahead log before (or as) it publishes, and a background loop
// periodically checkpoints the current sealed snapshot — the store XML plus
// the ownership/forwarding tables, replica subscriptions with their
// watermarks, and the cache policy's residency metadata — then truncates
// the log prefix the checkpoint covers. Restart recovers by loading the
// newest parseable checkpoint and replaying the log tail as ordinary COW
// transactions, so a recovered site is byte-identical to the state whose
// acked commits reached the log, rejoins with a warm cache (trimmed to
// CacheBudgetBytes, coldest first), and re-registers its recovered
// ownership with naming.
//
// Consistency invariant: a checkpoint captures its state under the writer
// mutex immediately after rotating the log, so every record with LSN <= the
// rotation boundary is reflected in the captured state (commit sites append
// and publish under one wmu hold; watermark marks append under subMu after
// the advance they record, and watermarks are monotone).

// DefaultCheckpointInterval is the checkpoint cadence when
// Config.CheckpointInterval is zero and a DataDir is set.
const DefaultCheckpointInterval = 10 * time.Second

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".json"
	// ckptKeep is how many checkpoints survive pruning: the newest plus one
	// fallback in case a crash tears the newest mid-write.
	ckptKeep = 2
)

// walOp is one mutation of a committed transaction. A walRecord groups the
// ops that committed together (e.g. a cache merge plus the evictions it
// forced) so replay applies them as one COW transaction.
type walOp struct {
	Op       string            `json:"op"`
	Path     string            `json:"path,omitempty"`
	Fields   map[string]string `json:"fields,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	TS       float64           `json:"ts,omitempty"`
	Frag     string            `json:"frag,omitempty"`
	Paths    []string          `json:"paths,omitempty"`
	Owner    string            `json:"owner,omitempty"`
	SchemaOp string            `json:"schemaOp,omitempty"`
	Seq      uint64            `json:"seq,omitempty"`
	Clock    float64           `json:"clock,omitempty"`
	// Cached marks a merge that entered through the caching path, so replay
	// re-registers its units with the residency policy at Clock.
	Cached bool `json:"cached,omitempty"`
}

// Op values. Each names the commit site that wrote it.
const (
	opUpdate   = "update"   // applyUpdateLocked: Path, Fields, Attrs, TS
	opMerge    = "merge"    // mergeCache / handleReplicate: Frag, Clock, Cached
	opEvict    = "evict"    // budget eviction: Paths (unit keys)
	opSync     = "sync"     // handleSync: Path (root), Frag, Owner, Paths, Clock
	opMark     = "mark"     // handleReplicate watermark: Path (root), Seq, Clock
	opTake     = "take"     // handleTake: Frag, Paths
	opDelegate = "delegate" // Delegate: Paths, Owner
	opPromote  = "promote"  // Promote: Path (root), Paths
	opSchema   = "schema"   // SchemaChange: SchemaOp, Path, Fields (args), TS
)

type walRecord struct {
	Ops []walOp `json:"ops"`
}

// ckptSub persists one replica subscription with its watermark, so a
// restarted replica (or a replica promoted after restart) does not regress
// Seq or serve at a stale watermark.
type ckptSub struct {
	Root       string   `json:"root"`
	Owner      string   `json:"owner"`
	OwnedPaths []string `json:"ownedPaths"`
	Seq        uint64   `json:"seq"`
	OwnerClock float64  `json:"ownerClock"`
}

// ckptUnit persists one cached unit's residency metadata, so the restarted
// budget policy evicts in the same coldest-first order it would have live.
type ckptUnit struct {
	Last    float64 `json:"last"`
	Fetched float64 `json:"fetched"`
}

type checkpointFile struct {
	// LSN is the rotation boundary: every WAL record <= LSN is reflected
	// in this checkpoint; recovery replays only records beyond it.
	LSN      uint64              `json:"lsn"`
	Clock    float64             `json:"clock"`
	Owned    []string            `json:"owned"`
	Migrated map[string]string   `json:"migrated,omitempty"`
	Subs     []ckptSub           `json:"subs,omitempty"`
	Cache    map[string]ckptUnit `json:"cache,omitempty"`
	// Store is the serialized document fragment (the same XML wire form
	// fragments travel in).
	Store string `json:"store"`
}

// durability is the per-site durability engine: the WAL, the checkpoint
// loop, and the recovery bookkeeping.
type durability struct {
	s   *Site
	dir string
	log *wal.Log

	// ckptMu serializes checkpoints (the ticker loop, recovery's initial
	// checkpoint, and the final one on Stop).
	ckptMu sync.Mutex

	stop       chan struct{}
	finishOnce sync.Once

	// recoveryBits holds math.Float64bits of the last recovery duration in
	// seconds (0 = cold start, nothing recovered).
	recoveryBits atomic.Uint64
}

// walAppend encodes one committed transaction and appends it to the WAL.
// Nil-safe: returns 0 when durability is off or the append fails (the
// failure is logged; the in-memory commit proceeds — availability over
// durability for a sick disk).
func (s *Site) walAppend(ops ...walOp) uint64 {
	if s.dur == nil {
		return 0
	}
	b, err := json.Marshal(walRecord{Ops: ops})
	if err != nil {
		s.log.Error("wal encode failed", slog.String("err", err.Error()))
		return 0
	}
	lsn, err := s.dur.log.Append(b)
	if err != nil {
		s.log.Error("wal append failed", slog.String("err", err.Error()))
		return 0
	}
	return lsn
}

// walWait blocks until the record at lsn is durable per the fsync policy.
// Acked writes call it after releasing the writer mutex, so group commit
// batches concurrent writers behind one fsync.
func (s *Site) walWait(lsn uint64) {
	if s.dur == nil || lsn == 0 {
		return
	}
	if err := s.dur.log.Sync(lsn); err != nil {
		s.log.Error("wal fsync failed", slog.String("err", err.Error()))
	}
}

// RecoverySeconds reports how long the last restart's recovery took (0
// when the site started cold or runs in-memory).
func (s *Site) RecoverySeconds() float64 {
	if s.dur == nil {
		return 0
	}
	return math.Float64frombits(s.dur.recoveryBits.Load())
}

// Recover is the durable replacement for Load: with no DataDir it is
// exactly Load; otherwise it opens the WAL, restores the newest parseable
// checkpoint (falling back to the partition store when none exists),
// replays the log tail, installs the recovered state with a warm cache
// trimmed to budget, re-registers recovered ownership with naming, and
// writes a fresh checkpoint. It reports whether state was recovered from
// disk (false on a cold start).
func (s *Site) Recover(store *fragment.Store, owned []xmldb.IDPath) (bool, error) {
	if s.cfg.DataDir == "" {
		s.Load(store, owned)
		return false, nil
	}
	t0 := time.Now()
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return false, err
	}
	log, err := wal.Open(s.cfg.DataDir, wal.Options{
		FsyncInterval: s.cfg.FsyncInterval,
		OnAppend: func(n int) {
			s.Metrics.WALAppends.Inc()
			s.Metrics.WALBytes.Add(int64(n))
		},
		OnFsync: s.Metrics.WALFsyncs.Inc,
	})
	if err != nil {
		return false, fmt.Errorf("site %s: opening wal: %w", s.cfg.Name, err)
	}
	d := &durability{s: s, dir: s.cfg.DataDir, log: log, stop: make(chan struct{})}

	cf := readNewestCheckpoint(s.cfg.DataDir, s.log)
	if cf == nil && log.LastLSN() == 0 {
		// Cold start: nothing on disk. Load the partition state and lay
		// down the first checkpoint so the next restart is warm.
		s.Load(store, owned)
		s.dur = d
		if err := d.checkpoint(); err != nil {
			return false, fmt.Errorf("site %s: initial checkpoint: %w", s.cfg.Name, err)
		}
		return false, nil
	}

	rec := newRecoveryState(s, cf, store, owned)
	replayed := 0
	err = log.Replay(rec.from, func(lsn uint64, payload []byte) error {
		var r walRecord
		if uerr := json.Unmarshal(payload, &r); uerr != nil {
			s.log.Warn("wal replay: undecodable record skipped",
				slog.Uint64("lsn", lsn), slog.String("err", uerr.Error()))
			return nil
		}
		rec.apply(lsn, r.Ops)
		replayed++
		return nil
	})
	if err != nil {
		return false, fmt.Errorf("site %s: wal replay: %w", s.cfg.Name, err)
	}

	s.wmu.Lock()
	s.state.Store(&siteState{store: rec.store, owned: rec.owned, migrated: rec.migrated})
	s.subMu.Lock()
	s.subs = rec.subs
	s.subMu.Unlock()
	if s.cache != nil {
		s.cache.restore(rec.units)
		// Warm-trim the rehydrated cache to budget, coldest first, before
		// durability turns on: the trim itself is not logged — the fresh
		// checkpoint below captures the trimmed state instead.
		if int64(rec.store.CachedBytes()) > s.cfg.CacheBudgetBytes && s.cfg.CacheBudgetBytes > 0 {
			w := rec.store.Begin()
			if evicted := s.evictToBudgetLocked(w); len(evicted) > 0 {
				s.publishLocked(&siteState{store: w.Commit(), owned: rec.owned, migrated: rec.migrated})
			}
		}
	}
	s.dur = d
	s.wmu.Unlock()

	if err := d.checkpoint(); err != nil {
		return true, fmt.Errorf("site %s: post-recovery checkpoint: %w", s.cfg.Name, err)
	}
	d.recoveryBits.Store(math.Float64bits(time.Since(t0).Seconds()))
	s.reRegisterOwned()
	s.log.Info("recovered from durable state",
		slog.Uint64("checkpoint_lsn", rec.from), slog.Int("replayed", replayed),
		slog.Duration("took", time.Since(t0)))
	return true, nil
}

// reRegisterOwned repoints naming at this site for every recovered owned
// node, so the recovered ownership set is authoritative again even if the
// registry moved on while the site was down.
func (s *Site) reRegisterOwned() {
	if s.cfg.Registry == nil {
		return
	}
	for _, k := range s.OwnedPaths() {
		p, err := xmldb.ParseIDPath(k)
		if err != nil {
			continue
		}
		s.cfg.Registry.Set(naming.DNSName(p, s.cfg.Service), s.cfg.Name)
	}
}

// recoveryState accumulates the store and tables while replaying the log.
type recoveryState struct {
	s        *Site
	from     uint64
	store    *fragment.Store
	owned    map[string]bool
	migrated map[string]string
	subs     map[string]*replicaSub
	units    map[string]*unitMeta
}

func newRecoveryState(s *Site, cf *checkpointFile, store *fragment.Store, owned []xmldb.IDPath) *recoveryState {
	rec := &recoveryState{
		s:        s,
		owned:    map[string]bool{},
		migrated: map[string]string{},
		subs:     map[string]*replicaSub{},
		units:    map[string]*unitMeta{},
	}
	if cf == nil {
		// No checkpoint survived (e.g. the first one was torn): start from
		// the partition base and replay the whole log.
		rec.store = store.Seal()
		for _, p := range owned {
			rec.owned[p.Key()] = true
		}
		return rec
	}
	root, err := xmldb.ParseString(cf.Store)
	if err != nil {
		// readNewestCheckpoint validated this; defensive fallback.
		rec.store = store.Seal()
		for _, p := range owned {
			rec.owned[p.Key()] = true
		}
		return rec
	}
	rec.from = cf.LSN
	rec.store = fragment.RestoreStore(root).Seal()
	for _, k := range cf.Owned {
		rec.owned[k] = true
	}
	for k, v := range cf.Migrated {
		rec.migrated[k] = v
	}
	for _, cs := range cf.Subs {
		rp, err := xmldb.ParseIDPath(cs.Root)
		if err != nil {
			continue
		}
		sub := &replicaSub{root: rp, owner: cs.Owner, seq: cs.Seq, ownerClock: cs.OwnerClock}
		for _, pk := range cs.OwnedPaths {
			if p, perr := xmldb.ParseIDPath(pk); perr == nil {
				sub.ownedPaths = append(sub.ownedPaths, p)
			}
		}
		rec.subs[rp.Key()] = sub
	}
	for k, u := range cf.Cache {
		rec.units[k] = &unitMeta{lastAccess: u.Last, fetchedAt: u.Fetched}
	}
	return rec
}

// apply replays one record as a single COW transaction. Individual op
// failures are logged and skipped (a later checkpoint supersedes them);
// the transaction's surviving ops still commit together.
func (rec *recoveryState) apply(lsn uint64, ops []walOp) {
	s := rec.s
	w := rec.store.Begin()
	for _, op := range ops {
		if err := rec.applyOp(w, op); err != nil {
			s.log.Warn("wal replay: op skipped",
				slog.Uint64("lsn", lsn), slog.String("op", op.Op), slog.String("err", err.Error()))
		}
	}
	rec.store = w.Commit()
}

func (rec *recoveryState) applyOp(w *fragment.COW, op walOp) error {
	switch op.Op {
	case opUpdate:
		p, err := xmldb.ParseIDPath(op.Path)
		if err != nil {
			return err
		}
		return w.ApplyUpdate(p, op.Fields, op.Attrs, op.TS)
	case opMerge:
		frag, err := xmldb.ParseString(op.Frag)
		if err != nil {
			return err
		}
		if err := w.MergeFragment(frag); err != nil {
			return err
		}
		if op.Cached {
			now := op.Clock
			walkCompleteUnits(frag, func(key string) {
				m := rec.units[key]
				if m == nil {
					m = &unitMeta{}
					rec.units[key] = m
				}
				m.fetchedAt = now
				m.lastAccess = now
			})
		}
		return nil
	case opEvict:
		for _, k := range op.Paths {
			p, err := xmldb.ParseIDPath(k)
			if err != nil {
				continue
			}
			_ = w.EvictLocalInfo(p)
			delete(rec.units, k)
		}
		return nil
	case opSync:
		root, err := xmldb.ParseIDPath(op.Path)
		if err != nil {
			return err
		}
		frag, err := xmldb.ParseString(op.Frag)
		if err != nil {
			return err
		}
		if err := w.MergeFragment(frag); err != nil {
			return err
		}
		sub := &replicaSub{root: root, owner: op.Owner, ownerClock: op.Clock}
		for _, pk := range op.Paths {
			if p, perr := xmldb.ParseIDPath(pk); perr == nil {
				sub.ownedPaths = append(sub.ownedPaths, p)
			}
		}
		rec.subs[root.Key()] = sub
		return nil
	case opMark:
		root, err := xmldb.ParseIDPath(op.Path)
		if err != nil {
			return err
		}
		if sub := rec.subs[root.Key()]; sub != nil {
			if op.Seq > sub.seq {
				sub.seq = op.Seq
			}
			if op.Clock > sub.ownerClock {
				sub.ownerClock = op.Clock
			}
		}
		return nil
	case opTake:
		frag, err := xmldb.ParseString(op.Frag)
		if err != nil {
			return err
		}
		if err := w.MergeFragment(frag); err != nil {
			return err
		}
		for _, pk := range op.Paths {
			p, perr := xmldb.ParseIDPath(pk)
			if perr != nil {
				continue
			}
			if err := w.SetStatusAt(p, fragment.StatusOwned); err != nil {
				return err
			}
			rec.owned[p.Key()] = true
			delete(rec.migrated, p.Key())
		}
		return nil
	case opDelegate:
		for _, pk := range op.Paths {
			p, perr := xmldb.ParseIDPath(pk)
			if perr != nil {
				continue
			}
			delete(rec.owned, p.Key())
			rec.migrated[p.Key()] = op.Owner
			_ = w.SetStatusAt(p, fragment.StatusComplete)
		}
		return nil
	case opPromote:
		root, err := xmldb.ParseIDPath(op.Path)
		if err != nil {
			return err
		}
		for _, pk := range op.Paths {
			p, perr := xmldb.ParseIDPath(pk)
			if perr != nil {
				continue
			}
			if err := w.SetStatusAt(p, fragment.StatusOwned); err != nil {
				return err
			}
			rec.owned[p.Key()] = true
			delete(rec.migrated, p.Key())
		}
		delete(rec.subs, root.Key())
		return nil
	case opSchema:
		p, err := xmldb.ParseIDPath(op.Path)
		if err != nil {
			return err
		}
		addKey, delPrefix, err := schemaApply(w, rec.s.cfg.Name, SchemaOp(op.SchemaOp), p, op.Fields, op.TS,
			func(key string) bool { return rec.owned[key] })
		if err != nil {
			return err
		}
		if addKey != "" {
			rec.owned[addKey] = true
		}
		if delPrefix != "" {
			for k := range rec.owned {
				if k == delPrefix || strings.HasPrefix(k, delPrefix+"/") {
					delete(rec.owned, k)
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown wal op %q", op.Op)
	}
}

// restore installs the persisted residency metadata. Called under wmu
// during recovery, before any query can touch the policy.
func (c *cacheManager) restore(units map[string]*unitMeta) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, m := range units {
		c.units[k] = m
	}
}

// snapshot copies the residency metadata for a checkpoint.
func (c *cacheManager) snapshot() map[string]ckptUnit {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.units) == 0 {
		return nil
	}
	out := make(map[string]ckptUnit, len(c.units))
	for k, m := range c.units {
		out[k] = ckptUnit{Last: m.lastAccess, Fetched: m.fetchedAt}
	}
	return out
}

// checkpoint writes the current state to ckpt-<boundary>.json, prunes old
// checkpoints, and truncates the WAL prefix the surviving fallback covers.
func (d *durability) checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	s := d.s
	t0 := time.Now()

	// Rotate under wmu: every record at or below the boundary committed
	// under a previous wmu hold, so the state captured here reflects it.
	s.wmu.Lock()
	boundary, err := d.log.Rotate()
	if err != nil {
		s.wmu.Unlock()
		return err
	}
	st := s.state.Load()
	clock := s.cfg.Clock()
	s.wmu.Unlock()

	cf := checkpointFile{LSN: boundary, Clock: clock}
	cf.Owned = make([]string, 0, len(st.owned))
	for k := range st.owned {
		cf.Owned = append(cf.Owned, k)
	}
	sort.Strings(cf.Owned)
	if len(st.migrated) > 0 {
		cf.Migrated = copyMigrated(st.migrated)
	}
	// Subscriptions are read after the rotate: a watermark mark logged
	// before the boundary has already advanced the sub (marks append under
	// subMu after the advance), and watermarks are monotone, so reading a
	// later value than the boundary saw is harmless.
	s.subMu.Lock()
	for _, sub := range s.subs {
		cs := ckptSub{Root: sub.root.String(), Owner: sub.owner, Seq: sub.seq, OwnerClock: sub.ownerClock}
		for _, p := range sub.ownedPaths {
			cs.OwnedPaths = append(cs.OwnedPaths, p.String())
		}
		cf.Subs = append(cf.Subs, cs)
	}
	s.subMu.Unlock()
	sort.Slice(cf.Subs, func(i, j int) bool { return cf.Subs[i].Root < cf.Subs[j].Root })
	if s.cache != nil {
		cf.Cache = s.cache.snapshot()
	}
	// Serializing the sealed snapshot needs no locks: writers have moved on
	// to building the next version.
	cf.Store = st.store.Root.StringSized(st.store.Size())

	if err := writeCheckpoint(d.dir, boundary, &cf); err != nil {
		return err
	}
	if err := d.prune(); err != nil {
		return err
	}
	s.Metrics.Checkpoints.Inc()
	s.Metrics.CheckpointSeconds.Observe(time.Since(t0).Seconds())
	return nil
}

func ckptName(lsn uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, lsn, ckptSuffix)
}

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	var lsn uint64
	if _, err := fmt.Sscanf(name[len(ckptPrefix):len(name)-len(ckptSuffix)], "%d", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// writeCheckpoint writes atomically: temp file, fsync, rename, dir fsync.
// A crash leaves either the previous checkpoint set or the new one, never
// a half-written file under a checkpoint name.
func writeCheckpoint(dir string, lsn uint64, cf *checkpointFile) error {
	b, err := json.Marshal(cf)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "ckpt-tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ckptName(lsn))); err != nil {
		os.Remove(tmpName)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// listCheckpoints returns checkpoint boundaries, ascending.
func listCheckpoints(dir string) []uint64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []uint64
	for _, e := range ents {
		if lsn, ok := parseCkptName(e.Name()); ok {
			out = append(out, lsn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// readNewestCheckpoint tries checkpoints newest-first and returns the first
// that parses fully (JSON and store XML); nil when none do.
func readNewestCheckpoint(dir string, log *slog.Logger) *checkpointFile {
	lsns := listCheckpoints(dir)
	for i := len(lsns) - 1; i >= 0; i-- {
		path := filepath.Join(dir, ckptName(lsns[i]))
		b, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var cf checkpointFile
		if err := json.Unmarshal(b, &cf); err != nil {
			log.Warn("checkpoint unreadable; trying older", slog.String("file", path), slog.String("err", err.Error()))
			continue
		}
		if _, err := xmldb.ParseString(cf.Store); err != nil {
			log.Warn("checkpoint store corrupt; trying older", slog.String("file", path), slog.String("err", err.Error()))
			continue
		}
		return &cf
	}
	return nil
}

// prune keeps the newest ckptKeep checkpoints, removes older ones, and
// truncates the WAL through the oldest surviving boundary (recovery can
// always fall back to that checkpoint plus the remaining log).
func (d *durability) prune() error {
	lsns := listCheckpoints(d.dir)
	if len(lsns) > ckptKeep {
		for _, lsn := range lsns[:len(lsns)-ckptKeep] {
			if err := os.Remove(filepath.Join(d.dir, ckptName(lsn))); err != nil {
				return err
			}
		}
		lsns = lsns[len(lsns)-ckptKeep:]
	}
	if len(lsns) > 0 {
		return d.log.RemoveThrough(lsns[0])
	}
	return nil
}

// loop checkpoints on a timer until the site stops.
func (d *durability) loop() {
	defer d.s.loopWG.Done()
	interval := d.s.cfg.CheckpointInterval
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.checkpoint(); err != nil {
				d.s.log.Error("checkpoint failed", slog.String("err", err.Error()))
			}
		}
	}
}

// finish closes out durability on shutdown: a clean stop writes a final
// checkpoint and fsync-closes the log; a crash abandons the log fd without
// flushing, exactly as kill -9 would.
func (d *durability) finish(crash bool) {
	d.finishOnce.Do(func() {
		if crash {
			d.log.Abandon()
			return
		}
		if err := d.checkpoint(); err != nil {
			d.s.log.Error("final checkpoint failed", slog.String("err", err.Error()))
		}
		if err := d.log.Close(); err != nil {
			d.s.log.Error("wal close failed", slog.String("err", err.Error()))
		}
	})
}
