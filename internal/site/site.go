package site

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"irisnet/internal/fragment"
	"irisnet/internal/metrics"
	"irisnet/internal/naming"
	"irisnet/internal/qeg"
	"irisnet/internal/trace"
	"irisnet/internal/transport"
	"irisnet/internal/xmldb"
	"irisnet/internal/xpath"
)

// Config configures an organizing agent.
type Config struct {
	// Name is the site's transport address.
	Name string
	// Service is the DNS suffix of the sensor service (e.g.
	// "parking.intel-iris.net").
	Service string
	// Net delivers messages between sites.
	Net transport.Network
	// DNS resolves IDable-node names to sites.
	DNS *naming.Client
	// Registry is the authoritative DNS store, written during migrations.
	Registry naming.Store
	// Schema is the service's document schema.
	Schema *xpath.Schema
	// Caching controls whether answer fragments returned by subqueries are
	// merged into the site database (the paper's aggressive caching).
	Caching bool
	// CacheBypass makes query evaluation ignore cached (complete) data,
	// always re-fetching from owners, while cache writes still happen when
	// Caching is set. It implements the Section 5.5 bypass suggestion and
	// the "caching with no hits" condition of Figure 10.
	CacheBypass bool
	// DisableIndex turns off the cache-conscious fragment index fast path,
	// forcing every local evaluation through the tree walker. It exists as
	// the baseline arm of irisbench -exp local-eval and as an escape hatch.
	DisableIndex bool
	// NaivePlans selects the unoptimized per-query XSLT generation path
	// (Figure 11's "naive XSLT creation").
	NaivePlans bool
	// CPUSlots is the number of concurrent CPU-bound message-processing
	// slots (1 models the paper's single-CPU machines).
	CPUSlots int
	// CoarseLocking reinstates the pre-snapshot concurrency control for
	// benchmarking: query evaluation holds a reader-writer lock that every
	// update and cache merge takes exclusively, so reads and writes
	// serialize exactly as they did before the copy-on-write design. It
	// exists only as the "before" arm of irisbench -exp read-write-mix.
	CoarseLocking bool
	// QueryWork, PerNodeWork and UpdateWork model the paper's heavier XML
	// backend (Xindice + Xalan cost milliseconds per operation where this
	// native engine costs microseconds): each query evaluation holds the
	// site's CPU slot for QueryWork plus PerNodeWork per element node in
	// the produced result fragment — so answering from a large cached
	// fragment costs more than forwarding a query onward, the effect
	// behind Figure 10 — and each sensor update holds the slot for
	// UpdateWork. Slots are held without burning host CPU, keeping
	// simulated capacity independent of the host's core count. Zero
	// disables the synthetic costs.
	QueryWork   time.Duration
	PerNodeWork time.Duration
	UpdateWork  time.Duration
	// Clock returns the current time in seconds; nil uses the wall clock.
	Clock func() float64
	// CallTimeout bounds each individual network attempt this site makes
	// (subquery fetches, forwards, migrations). Zero uses
	// transport.DefaultCallTimeout; the query's overall deadline, carried in
	// the message envelope, still caps everything.
	CallTimeout time.Duration
	// Retry shapes the retry loop around those attempts; the zero value
	// uses the transport defaults (3 attempts, exponential backoff).
	Retry transport.RetryPolicy
	// Logger receives structured logs (log/slog) correlated by trace ID.
	// Nil disables logging; the benchmark harness leaves it nil so the hot
	// path pays only a disabled-handler check.
	Logger *slog.Logger
	// DisableBatching turns off per-destination subquery batching: every
	// fresh subquery ships as its own KindQuery message, the pre-batching
	// behavior. It exists for the irisbench batching comparison; leave it
	// false in production, where a query fanning out to N subtrees owned by
	// one site pays one round trip instead of N.
	DisableBatching bool
	// BatchByteCap caps the encoded payload size of one KindBatch message;
	// destination groups whose entries exceed it are split into several
	// batch messages. Zero uses DefaultBatchByteCap.
	BatchByteCap int
	// DisableCoalescing turns off single-flight deduplication of identical
	// in-flight subqueries at caching sites (see dispatch.go). Only
	// meaningful when Caching is set: coalescing never runs without it.
	DisableCoalescing bool
	// CacheBudgetBytes bounds the accounted in-memory size of cached
	// (non-owned) data. When a cache merge pushes the store past the
	// budget, the coldest local-information units are evicted in the same
	// copy-on-write transaction (see cache.go); zero leaves the cache
	// unbounded, the pre-budget behavior. Only meaningful with Caching.
	CacheBudgetBytes int64
	// DisableFreshnessLedger turns off per-answer provenance accounting
	// (the qeg staleness ledger, FreshnessReport spans and the staleness/
	// provenance metrics). The ledger is on by default; this exists as the
	// baseline arm of irisbench -exp obs-overhead and as an escape hatch.
	DisableFreshnessLedger bool
	// ReplicaFlushInterval is the owner-side replication flush cadence:
	// committed deltas batch for at most this long before shipping to read
	// replicas, and idle streams heartbeat their watermark at this period
	// (replication.go). Zero uses DefaultReplicaFlushInterval.
	ReplicaFlushInterval time.Duration
	// SlowQueryThreshold, when positive, logs a structured warning (with
	// trace ID) for every query whose total handling time reaches it.
	SlowQueryThreshold time.Duration
	// StaleAnswerThreshold, when positive, logs a structured warning when
	// an answer used a cached local-information unit at least this old.
	StaleAnswerThreshold time.Duration
	// DataDir, when set, makes the site durable: committed transactions
	// append to a write-ahead log under this directory and periodic
	// checkpoints serialize the sealed snapshot, so a restarted site
	// recovers its owned data and rejoins with a warm cache (durable.go).
	// Empty keeps the prior fully in-memory behavior.
	DataDir string
	// FsyncInterval relaxes WAL durability: zero fsyncs on every acked
	// commit (group commit batches concurrent writers); positive values
	// fsync on a timer instead, trading the tail of un-synced commits on a
	// crash for update throughput. Only meaningful with DataDir.
	FsyncInterval time.Duration
	// CheckpointInterval is the checkpoint cadence; zero uses
	// DefaultCheckpointInterval. Only meaningful with DataDir.
	CheckpointInterval time.Duration
}

// DefaultBatchByteCap bounds one batch message's encoded payload (256 KiB):
// large enough that realistic fan-outs ship as one message, small enough
// that a batch never trips transport frame limits or head-of-line-blocks a
// WAN link for seconds.
const DefaultBatchByteCap = 256 << 10

// maxSiteGatherRounds bounds a site's evaluate/fetch gather loop; hitting
// it returns the partial answer with a truncation marker rather than an
// error (see handleQuery).
const maxSiteGatherRounds = 64

// Metrics exposes a site's counters to the harness.
type Metrics struct {
	Queries        metrics.Counter // queries and subqueries served
	Subqueries     metrics.Counter // subqueries this site issued
	Updates        metrics.Counter // sensor updates applied
	CacheHits      metrics.Counter // queries fully answered locally
	CacheMisses    metrics.Counter // queries that had to issue subqueries
	Forwards       metrics.Counter // updates forwarded after migration
	Retries        metrics.Counter // network attempts retried after failure
	DeadlineHits   metrics.Counter // attempts that timed out
	PartialAnswers metrics.Counter // results with unreachable subtrees
	// SubqueryRPCs counts network sends on the subquery path: one per
	// single-subquery message and one per batch message. Subqueries counts
	// logical subqueries, so Subqueries - SubqueryRPCs is the messaging
	// saved by batching.
	SubqueryRPCs metrics.Counter
	// Batches counts KindBatch messages sent (each covering >= 2 entries
	// before cap-splitting).
	Batches metrics.Counter
	// Coalesced counts subqueries answered by joining another query's
	// in-flight fetch instead of going upstream (caching sites only).
	Coalesced metrics.Counter
	// Evictions counts local-information units evicted by the cache budget
	// policy (sites with CacheBudgetBytes set only).
	Evictions metrics.Counter
	// AggregatePushdowns counts aggregate queries answered in decomposed
	// mode: local partial plus per-site aggregate subrequests.
	AggregatePushdowns metrics.Counter
	// AggregateFallbacks counts aggregate queries answered by raw gather
	// plus local aggregation (inner query outside the decomposable class).
	AggregateFallbacks metrics.Counter
	// GatherBytesSaved accumulates the fragment bytes the aggregate path
	// kept off the wire: per hop, the serialized fragment the raw path
	// would have shipped upstream minus the compact partial actually sent.
	GatherBytesSaved metrics.Counter
	// ReplicaBatchesSent counts replication delta batches and watermark
	// heartbeats this owner shipped to its read replicas.
	ReplicaBatchesSent metrics.Counter
	// ReplicaBatchesApplied counts replication batches this site applied
	// as a replica.
	ReplicaBatchesApplied metrics.Counter
	// ReplicaSyncs counts replica seeds this site installed.
	ReplicaSyncs metrics.Counter
	// SummaryHits counts aggregate queries answered from the summary cache.
	SummaryHits metrics.Counter
	// WALAppends/WALBytes/WALFsyncs count write-ahead-log activity on
	// durable sites; Checkpoints counts completed checkpoints.
	WALAppends  metrics.Counter
	WALBytes    metrics.Counter
	WALFsyncs   metrics.Counter
	Checkpoints metrics.Counter
	// CheckpointSeconds is the per-checkpoint wall-time distribution.
	CheckpointSeconds *metrics.SizeHistogram
	// BatchSize is the per-batch-message entry-count distribution.
	BatchSize *metrics.SizeHistogram
	// AnswerStaleness is the per-answer maximum cached-unit age in
	// seconds (0 for answers assembled purely from owned data) — the
	// headline "how stale are the answers we serve" distribution.
	AnswerStaleness *metrics.SizeHistogram
	// CacheAge is the per-answer mean age of contributing cached units.
	CacheAge *metrics.SizeHistogram
	// PredicateMargin is the per-answer minimum consistency-predicate
	// margin: how many seconds of extra staleness the answer could have
	// absorbed before a freshness predicate failed. Observed only for
	// answers whose evaluation checked a measurable predicate.
	PredicateMargin *metrics.SizeHistogram
	// AnswerCacheBytes/AnswerOwnedBytes/AnswerFetchedBytes split the
	// local-information bytes of served answers by provenance: cached
	// copies, owned units, and fragments fetched from other sites.
	AnswerCacheBytes   metrics.Counter
	AnswerOwnedBytes   metrics.Counter
	AnswerFetchedBytes metrics.Counter
	Breakdown          *metrics.Breakdown
}

// Register registers every counter under the site label, plus live gauges
// for cache occupancy, into a metrics registry for /metrics exposition.
func (s *Site) Register(r *metrics.Registry) {
	l := metrics.Labels{"site": s.cfg.Name}
	m := &s.Metrics
	r.RegisterCounter("irisnet_queries_total", "Queries and subqueries served.", l, &m.Queries)
	r.RegisterCounter("irisnet_subqueries_total", "Subqueries issued to other sites.", l, &m.Subqueries)
	r.RegisterCounter("irisnet_updates_total", "Sensor updates applied.", l, &m.Updates)
	r.RegisterCounter("irisnet_cache_hits_total", "Queries fully answered from local/cached data.", l, &m.CacheHits)
	r.RegisterCounter("irisnet_cache_misses_total", "Queries that had to issue subqueries.", l, &m.CacheMisses)
	r.RegisterCounter("irisnet_forwards_total", "Messages forwarded after an ownership migration.", l, &m.Forwards)
	r.RegisterCounter("irisnet_retries_total", "Network attempts retried after failure.", l, &m.Retries)
	r.RegisterCounter("irisnet_deadline_hits_total", "Network attempts that ran into a deadline.", l, &m.DeadlineHits)
	r.RegisterCounter("irisnet_partial_answers_total", "Results returned with unreachable subtrees.", l, &m.PartialAnswers)
	r.RegisterCounter("irisnet_subquery_rpcs_total", "Network sends on the subquery path (single messages and batches).", l, &m.SubqueryRPCs)
	r.RegisterCounter("irisnet_batches_total", "Batched subquery messages sent.", l, &m.Batches)
	r.RegisterCounter("irisnet_coalesced_subqueries_total", "Subqueries answered by joining an in-flight fetch.", l, &m.Coalesced)
	r.RegisterCounter("irisnet_cache_evictions_total", "Cached local-information units evicted by the budget policy.", l, &m.Evictions)
	r.RegisterCounter("irisnet_aggregate_pushdowns_total", "Aggregate queries answered with decomposed partial aggregation.", l, &m.AggregatePushdowns)
	r.RegisterCounter("irisnet_aggregate_fallbacks_total", "Aggregate queries answered via raw gather plus local aggregation.", l, &m.AggregateFallbacks)
	r.RegisterCounter("irisnet_gather_bytes_saved_total", "Fragment bytes kept off the wire by partial aggregation.", l, &m.GatherBytesSaved)
	r.RegisterCounter("irisnet_aggregate_summary_hits_total", "Aggregate queries answered from the summary cache.", l, &m.SummaryHits)
	r.RegisterCounter("irisnet_replica_batches_sent_total", "Replication delta batches and heartbeats shipped to read replicas.", l, &m.ReplicaBatchesSent)
	r.RegisterCounter("irisnet_replica_batches_applied_total", "Replication batches applied as a replica.", l, &m.ReplicaBatchesApplied)
	r.RegisterCounter("irisnet_replica_syncs_total", "Replica seeds installed.", l, &m.ReplicaSyncs)
	r.RegisterCounter("irisnet_wal_appends_total", "Write-ahead-log records appended.", l, &m.WALAppends)
	r.RegisterCounter("irisnet_wal_bytes_total", "Write-ahead-log bytes appended (framed).", l, &m.WALBytes)
	r.RegisterCounter("irisnet_wal_fsyncs_total", "Write-ahead-log fsyncs issued.", l, &m.WALFsyncs)
	r.RegisterCounter("irisnet_checkpoints_total", "Durability checkpoints completed.", l, &m.Checkpoints)
	r.RegisterSizeHistogram("irisnet_checkpoint_seconds", "Per-checkpoint wall time.", l, m.CheckpointSeconds)
	r.GaugeFunc("irisnet_recovery_seconds", "Duration of the last restart recovery (0 = cold or in-memory).", l,
		s.RecoverySeconds)
	r.GaugeFunc("irisnet_replica_lag_seconds", "Maximum replication lag across this site's subscriptions.", l,
		func() float64 {
			lag, _ := s.ReplicaLag()
			return lag
		})
	r.GaugeFunc("irisnet_summary_cache_bytes", "Accounted bytes of cached aggregate summaries.", l,
		func() float64 {
			if s.summaries == nil {
				return 0
			}
			return float64(s.summaries.Bytes())
		})
	r.RegisterSizeHistogram("irisnet_subquery_batch_size", "Entries per batched subquery message.", l, m.BatchSize)
	r.RegisterSizeHistogram("irisnet_answer_staleness_seconds", "Per-answer maximum age of contributing cached units.", l, m.AnswerStaleness)
	r.RegisterSizeHistogram("irisnet_cache_age_seconds", "Per-answer mean age of contributing cached units.", l, m.CacheAge)
	r.RegisterSizeHistogram("irisnet_predicate_margin_seconds", "Per-answer minimum consistency-predicate margin.", l, m.PredicateMargin)
	r.RegisterCounter("irisnet_answer_cache_bytes_total", "Answer bytes served from cached local information.", l, &m.AnswerCacheBytes)
	r.RegisterCounter("irisnet_answer_owned_bytes_total", "Answer bytes served from owned local information.", l, &m.AnswerOwnedBytes)
	r.RegisterCounter("irisnet_answer_fetched_bytes_total", "Answer bytes fetched from other sites.", l, &m.AnswerFetchedBytes)
	r.GaugeFunc("irisnet_cache_bytes", "Accounted bytes of cached (non-owned) local-information units.", l,
		func() float64 { return float64(s.CacheBytes()) })
	r.GaugeFunc("irisnet_cache_budget_bytes", "Configured cache byte budget (0 = unbounded).", l,
		func() float64 { return float64(s.cfg.CacheBudgetBytes) })
	r.GaugeFunc("irisnet_store_nodes", "Element nodes in the site database.", l,
		func() float64 { return float64(s.StoreSize()) })
	r.GaugeFunc("irisnet_cached_fragments", "Complete (cached, non-owned) IDable nodes in the store.", l,
		func() float64 { return float64(s.CachedFragments()) })
	r.GaugeFunc("irisnet_owned_nodes", "IDable nodes this site owns.", l,
		func() float64 { return float64(s.ownedCount()) })
}

// siteState is one immutable version of everything a reader needs in a
// single consistent view: the sealed store plus the ownership and
// forwarding tables that must agree with it. Writers build a new siteState
// (copy-on-write for the store, copied maps when the tables change) and
// publish it with one atomic store, so a query never observes a store that
// disagrees with the ownership tables.
type siteState struct {
	store    *fragment.Store
	owned    map[string]bool
	migrated map[string]string // old-owner forwarding table: ID-path key -> new owner
}

// Site is one organizing agent.
//
// Concurrency model (DESIGN.md §9): readers — query evaluation, admin and
// debug views, occupancy gauges — load the current siteState with one
// atomic pointer read and never lock. Writers — sensor updates, cache
// merges, migrations, schema changes, evictions — serialize on wmu, build
// the next version via fragment.COW path-copying, and publish it
// atomically; because each writer starts from the version the previous
// writer published, no writer can lose another's changes.
type Site struct {
	cfg        Config
	log        *slog.Logger
	cpu        *transport.CPU
	compiler   *qeg.Compiler
	call       *transport.Caller
	flights    *flightGroup[subResult]
	aggFlights *flightGroup[aggResult]

	// summaries is the aggregate summary cache: combined partial-aggregate
	// answers kept by caching sites so repeated aggregate queries skip the
	// gather entirely (summary.go); nil unless cfg.Caching.
	summaries *summaryCache

	// cache is the budget/eviction policy state; nil unless the site
	// caches with CacheBudgetBytes set (cache.go).
	cache        *cacheManager
	stopPressure chan struct{}
	stopOnce     sync.Once

	// dur is the durability engine; nil unless cfg.DataDir is set
	// (durable.go). Assigned before Start, never mutated after.
	dur *durability
	// loopWG tracks the site's own background loops (cache pressure,
	// checkpointing) so Stop can wait for a leak-free shutdown.
	loopWG sync.WaitGroup

	// repl is the owner-side replication engine; subs the replica-side
	// subscription table, guarded by subMu (replication.go).
	repl  *replicator
	subMu sync.Mutex
	subs  map[string]*replicaSub

	// wmu serializes writers; readers never take it.
	wmu   sync.Mutex
	state atomic.Pointer[siteState]

	// coarse reinstates read/write serialization when cfg.CoarseLocking is
	// set (benchmark baseline only); otherwise it is never touched.
	coarse sync.RWMutex

	Metrics Metrics
}

// New creates a site with an empty store rooted at the given document root.
func New(cfg Config, rootName, rootID string) *Site {
	if cfg.Clock == nil {
		cfg.Clock = func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(noopHandler{})
	}
	cfg.Logger = cfg.Logger.With("site", cfg.Name)
	if cfg.BatchByteCap <= 0 {
		cfg.BatchByteCap = DefaultBatchByteCap
	}
	s := &Site{
		cfg:          cfg,
		log:          cfg.Logger,
		cpu:          transport.NewCPU(cfg.CPUSlots),
		compiler:     qeg.NewCompiler(cfg.Schema, cfg.NaivePlans),
		flights:      newFlightGroup[subResult](),
		aggFlights:   newFlightGroup[aggResult](),
		stopPressure: make(chan struct{}),
		subs:         map[string]*replicaSub{},
	}
	s.repl = newReplicator(s)
	if cfg.Caching && cfg.CacheBudgetBytes > 0 {
		s.cache = newCacheManager()
	}
	if cfg.Caching {
		s.summaries = newSummaryCache(cfg.CacheBudgetBytes)
	}
	s.state.Store(&siteState{
		store:    fragment.NewStore(rootName, rootID).Seal(),
		owned:    map[string]bool{},
		migrated: map[string]string{},
	})
	s.Metrics.Breakdown = metrics.NewBreakdown()
	s.Metrics.BatchSize = metrics.NewSizeHistogram(0)
	s.Metrics.AnswerStaleness = metrics.NewSizeHistogram(0)
	s.Metrics.CacheAge = metrics.NewSizeHistogram(0)
	s.Metrics.PredicateMargin = metrics.NewSizeHistogram(0)
	s.Metrics.CheckpointSeconds = metrics.NewSizeHistogram(0)
	s.call = &transport.Caller{
		Net:        cfg.Net,
		Policy:     cfg.Retry,
		Budget:     transport.NewRetryBudget(0, 0),
		Timeout:    cfg.CallTimeout,
		OnRetry:    s.Metrics.Retries.Inc,
		OnDeadline: s.Metrics.DeadlineHits.Inc,
	}
	return s
}

// Load installs an initial store and owned set produced by
// fragment.Partition. The store is sealed: from here on every mutation
// goes through the copy-on-write write path.
func (s *Site) Load(store *fragment.Store, owned []xmldb.IDPath) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	o := make(map[string]bool, len(owned))
	for _, p := range owned {
		o[p.Key()] = true
	}
	s.state.Store(&siteState{store: store.Seal(), owned: o, migrated: map[string]string{}})
}

// publishLocked swaps in the next version. Callers hold wmu.
func (s *Site) publishLocked(st *siteState) { s.state.Store(st) }

// Start registers the site on the network and starts its background loops
// (cache pressure on budgeted caching sites, checkpointing on durable ones).
func (s *Site) Start() error {
	if err := s.cfg.Net.Register(s.cfg.Name, s.Handle); err != nil {
		return err
	}
	if s.cache != nil {
		s.loopWG.Add(1)
		go s.pressureLoop()
	}
	if s.dur != nil {
		s.loopWG.Add(1)
		go s.dur.loop()
	}
	return nil
}

// Stop unregisters the site and shuts it down cleanly: background loops
// and in-flight replication sends are waited out (leak-free), and on
// durable sites a final checkpoint is written before the WAL closes.
func (s *Site) Stop() { s.shutdown(false) }

// Crash is Stop without graceful durability: the WAL file descriptor is
// abandoned mid-stream with no final fsync or checkpoint, simulating
// kill -9 for recovery tests and the durability experiment. Everything in
// the OS page cache at that instant survives; nothing else does.
func (s *Site) Crash() { s.shutdown(true) }

func (s *Site) shutdown(crash bool) {
	s.stopOnce.Do(func() {
		close(s.stopPressure)
		s.repl.close()
		if s.dur != nil {
			close(s.dur.stop)
		}
	})
	s.cfg.Net.Unregister(s.cfg.Name)
	s.loopWG.Wait()
	s.repl.wait()
	if s.dur != nil {
		s.dur.finish(crash)
	}
}

// Name returns the site's transport name.
func (s *Site) Name() string { return s.cfg.Name }

// StoreSnapshot returns a deep, mutable copy of the site database
// (tests/tools).
func (s *Site) StoreSnapshot() *fragment.Store {
	return s.state.Load().store.Clone()
}

// OwnedPaths returns the keys of owned nodes (tests/tools).
func (s *Site) OwnedPaths() []string {
	st := s.state.Load()
	out := make([]string, 0, len(st.owned))
	for k := range st.owned {
		out = append(out, k)
	}
	return out
}

// StoreSize returns the number of element nodes in the site database.
func (s *Site) StoreSize() int {
	return s.state.Load().store.Size()
}

// CachedFragments returns the number of complete, non-owned IDable nodes in
// the store — the cache occupancy /metrics and /debug/fragment report.
func (s *Site) CachedFragments() int {
	return s.state.Load().store.CachedCount()
}

func (s *Site) ownedCount() int {
	return len(s.state.Load().owned)
}

// DebugInfo is the /debug/fragment view of one site: what it owns, how big
// its store is, how much of it is cache, and where migrated subtrees went.
type DebugInfo struct {
	Site            string            `json:"site"`
	StoreNodes      int               `json:"storeNodes"`
	CachedFragments int               `json:"cachedFragments"`
	CacheBytes      int64             `json:"cacheBytes"`
	CacheBudget     int64             `json:"cacheBudgetBytes,omitempty"`
	Owned           []string          `json:"owned"`
	Forwarding      map[string]string `json:"forwarding,omitempty"`
	// Role classifies the site's replication position: "owner",
	// "replica", or "owner+replica"; empty when it holds nothing.
	Role string `json:"role,omitempty"`
	// ReplicaOf maps each subscribed replication root to this site's
	// current lag behind its owner, in seconds.
	ReplicaOf map[string]float64 `json:"replicaOf,omitempty"`
	// ReplicatesTo maps each replicated root to the replica sites this
	// owner streams it to.
	ReplicatesTo map[string][]string `json:"replicatesTo,omitempty"`
}

// Stats is a point-in-time snapshot of a site's counters, serialized into
// the /debug/cluster federated view so a whole deployment's serving and
// freshness behavior is scrapeable from any admin endpoint.
type Stats struct {
	Queries            int64   `json:"queries"`
	Subqueries         int64   `json:"subqueries"`
	Updates            int64   `json:"updates"`
	CacheHits          int64   `json:"cacheHits"`
	CacheMisses        int64   `json:"cacheMisses"`
	Forwards           int64   `json:"forwards"`
	Retries            int64   `json:"retries"`
	PartialAnswers     int64   `json:"partialAnswers"`
	Coalesced          int64   `json:"coalesced"`
	Evictions          int64   `json:"evictions"`
	AnswerCacheBytes   int64   `json:"answerCacheBytes"`
	AnswerOwnedBytes   int64   `json:"answerOwnedBytes"`
	AnswerFetchedBytes int64   `json:"answerFetchedBytes"`
	MaxStalenessSec    float64 `json:"maxStalenessSec"`
	// ReplicaLagSec is the current maximum replication lag across the
	// site's subscriptions (0 when it replicates nothing); ReplicaBatches
	// the batches it has applied as a replica.
	ReplicaLagSec  float64 `json:"replicaLagSec"`
	ReplicaBatches int64   `json:"replicaBatches"`
}

// Stats snapshots the site's counters; reads are atomic per counter, not
// mutually consistent, which is fine for an observability view.
func (s *Site) Stats() Stats {
	m := &s.Metrics
	lag, _ := s.ReplicaLag()
	return Stats{
		ReplicaLagSec:      lag,
		ReplicaBatches:     m.ReplicaBatchesApplied.Value(),
		Queries:            m.Queries.Value(),
		Subqueries:         m.Subqueries.Value(),
		Updates:            m.Updates.Value(),
		CacheHits:          m.CacheHits.Value(),
		CacheMisses:        m.CacheMisses.Value(),
		Forwards:           m.Forwards.Value(),
		Retries:            m.Retries.Value(),
		PartialAnswers:     m.PartialAnswers.Value(),
		Coalesced:          m.Coalesced.Value(),
		Evictions:          m.Evictions.Value(),
		AnswerCacheBytes:   m.AnswerCacheBytes.Value(),
		AnswerOwnedBytes:   m.AnswerOwnedBytes.Value(),
		AnswerFetchedBytes: m.AnswerFetchedBytes.Value(),
		MaxStalenessSec:    m.AnswerStaleness.Quantile(1),
	}
}

// Debug snapshots the site's observability view from one published
// version, without blocking queries or writers.
func (s *Site) Debug() DebugInfo {
	st := s.state.Load()
	d := DebugInfo{
		Site:            s.cfg.Name,
		StoreNodes:      st.store.Size(),
		CachedFragments: st.store.CachedCount(),
		CacheBytes:      int64(s.CacheBytes()),
		CacheBudget:     s.cfg.CacheBudgetBytes,
		Owned:           make([]string, 0, len(st.owned)),
	}
	for k := range st.owned {
		d.Owned = append(d.Owned, k)
	}
	sort.Strings(d.Owned)
	if len(st.migrated) > 0 {
		d.Forwarding = make(map[string]string, len(st.migrated))
		for k, v := range st.migrated {
			d.Forwarding[k] = v
		}
	}
	d.Role, d.ReplicaOf, d.ReplicatesTo = s.replicaDebug()
	return d
}

// Owns reports whether the site currently owns the node.
func (s *Site) Owns(p xmldb.IDPath) bool {
	return s.state.Load().owned[p.Key()]
}

// Handle is the transport entry point. The effective deadline is the
// tighter of the transport context's and the one stamped in the message
// envelope (which is how deadlines survive real TCP hops).
func (s *Site) Handle(ctx context.Context, payload []byte) ([]byte, error) {
	var resp *Message
	msg, err := DecodeMessage(payload)
	if err != nil {
		return errorMessage(err).Encode(), nil
	}
	if d, ok := msg.Deadline(); ok {
		if cur, has := ctx.Deadline(); !has || d.Before(cur) {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, d)
			defer cancel()
		}
	}
	switch msg.Kind {
	case KindQuery:
		resp = s.handleQuery(ctx, msg, len(payload), nil)
	case KindAggregate:
		resp = s.handleAggregate(ctx, msg, len(payload), nil)
	case KindBatch:
		resp = s.handleBatch(ctx, msg, len(payload))
	case KindUpdate:
		resp = s.handleUpdate(ctx, msg)
	case KindDelegate:
		resp = s.handleDelegate(msg)
	case KindTake:
		resp = s.handleTake(msg)
	case KindSchema:
		resp = s.handleSchema(msg)
	case KindSync:
		resp = s.handleSync(msg)
	case KindReplicate:
		resp = s.handleReplicate(msg)
	default:
		resp = errorMessage(fmt.Errorf("site %s: unknown message kind %q", s.cfg.Name, msg.Kind))
	}
	return resp.Encode(), nil
}

// handleQuery runs the full query-evaluate-gather loop for a query or
// subquery arriving at this site and returns the assembled answer fragment.
// Subquery failures do not fail the query: the affected subtree is spliced
// in as an unreachable placeholder and listed in the result's Unreachable
// paths (partial answers).
//
// pinned, when non-nil, is the sealed snapshot every plan evaluates against
// — batch entries share one snapshot so all entries of a batch answer from
// a single consistent version. Nil loads the latest published snapshot per
// plan, the behavior for individually arriving queries.
func (s *Site) handleQuery(ctx context.Context, msg *Message, reqBytes int, pinned *fragment.Store) *Message {
	// Tracing: a TraceID on the query makes this hop record a span. The
	// per-hop retry/deadline tallies ride in the context so concurrent
	// queries do not race on the site-wide counters.
	var span *trace.Span
	var stats *transport.CallStats
	if msg.TraceID != "" {
		span = &trace.Span{TraceID: msg.TraceID, Site: s.cfg.Name, Query: msg.Query, Op: "query", BytesIn: reqBytes}
		ctx, stats = transport.WithCallStats(ctx)
	}

	// Stale-DNS forwarding (Section 4): if the query targets a subtree this
	// site delegated away, pass it to the new owner rather than serving a
	// stale copy — the old owner "has the correct DNS entry in its cache".
	if to, ok := s.forwardTarget(msg.Query); ok {
		s.Metrics.Forwards.Inc()
		t0 := time.Now()
		msg.StampDeadline(ctx)
		respB, err := s.call.Call(ctx, to, msg.Encode())
		if err != nil {
			return errorMessage(fmt.Errorf("site %s: forwarding to %s: %w", s.cfg.Name, to, err))
		}
		resp, err := DecodeMessage(respB)
		if err != nil {
			return errorMessage(err)
		}
		s.log.LogAttrs(ctx, slog.LevelDebug, "query forwarded",
			slog.String("trace_id", msg.TraceID), slog.String("to", to),
			slog.Duration("dur", time.Since(t0)))
		if span != nil {
			span.Op = "forward"
			span.DurationUS = time.Since(t0).Microseconds()
			finishSpan(span, stats)
			if resp.Span != nil {
				span.Children = append(span.Children, resp.Span)
			}
			resp.Span = span
		}
		return resp
	}

	s.Metrics.Queries.Inc()
	t0 := time.Now()

	// Plan creation (Figure 11: "Creating the XSLT query").
	var plans []*qeg.Plan
	var planErr error
	s.cpu.Do(func() {
		plans, planErr = s.compiler.Compile(msg.Query)
	})
	planTime := time.Since(t0)
	s.Metrics.Breakdown.Add("create-plan", planTime)
	if planErr != nil {
		return errorMessage(planErr)
	}

	opts := qeg.Options{Now: s.cfg.Clock, IgnoreCached: s.cfg.CacheBypass, NoIndex: s.cfg.DisableIndex}
	ans := fragment.NewStore(s.rootName(), s.rootID())
	seen := map[string]bool{}
	unreachable := map[string]bool{}
	askedAny := false
	truncated := false
	fanout := 0

	// Staleness ledger: prov aggregates provenance across plans and gather
	// rounds; only the rounds whose local result actually merges into the
	// answer contribute (intermediate nested rounds re-read the same units).
	var prov *qeg.Provenance
	if !s.cfg.DisableFreshnessLedger {
		prov = qeg.NewProvenance(s.cfg.Clock())
	}
	var fetchedBytes int64

	var execTime, commTime time.Duration
	for _, plan := range plans {
		// One atomic load pins this plan's snapshot; evaluation runs
		// lock-free against the sealed version. Nested plans evaluate a
		// deep working copy (they splice sub-answers into it between
		// rounds and may navigate parent axes, which structural sharing
		// does not preserve).
		snap := pinned
		if snap == nil {
			snap = s.state.Load().store
		}
		var work *fragment.Store // nil = evaluate the published snapshot
		if plan.NestedIdx >= 0 {
			work = snap.Clone()
		}
		for round := 0; ; round++ {
			var res *qeg.Result
			var evalErr error
			if prov != nil {
				opts.Prov = qeg.NewProvenance(prov.Now())
			}
			te := time.Now()
			s.cpu.Do(func() {
				if work != nil {
					res, evalErr = qeg.Evaluate(work, plan, opts)
				} else if s.cfg.CoarseLocking {
					s.coarse.RLock()
					res, evalErr = qeg.Evaluate(snap, plan, opts)
					s.coarse.RUnlock()
				} else {
					res, evalErr = qeg.Evaluate(snap, plan, opts)
				}
				if s.cfg.QueryWork > 0 || s.cfg.PerNodeWork > 0 {
					cost := s.cfg.QueryWork
					if s.cfg.PerNodeWork > 0 && res != nil {
						cost += time.Duration(res.Nodes) * s.cfg.PerNodeWork
					}
					spin(cost)
				}
			})
			execTime += time.Since(te)
			if evalErr != nil {
				return errorMessage(evalErr)
			}

			var fresh []qeg.Subquery
			for _, sq := range res.Subqueries {
				if !seen[sq.Key()] {
					seen[sq.Key()] = true
					fresh = append(fresh, sq)
				}
			}
			if len(fresh) == 0 {
				s.cpu.Do(func() {
					evalErr = ans.MergeFragment(res.Fragment)
				})
				if evalErr != nil {
					return errorMessage(fmt.Errorf("site %s: merging local result: %w", s.cfg.Name, evalErr))
				}
				if prov != nil {
					prov.Merge(opts.Prov)
				}
				break
			}
			if round >= maxSiteGatherRounds {
				// The evaluate/fetch fixpoint did not converge within the
				// round bound. Return the partial answer with an explicit
				// truncation marker — everything gathered so far plus
				// unreachable markers for the still-pending subtrees —
				// instead of discarding the work (gather truncation).
				s.cpu.Do(func() {
					evalErr = ans.MergeFragment(res.Fragment)
				})
				if evalErr != nil {
					return errorMessage(fmt.Errorf("site %s: merging truncated result: %w", s.cfg.Name, evalErr))
				}
				if prov != nil {
					prov.Merge(opts.Prov)
				}
				for _, sq := range fresh {
					if merr := s.markUnreachable(ans, unreachable, sq.Target); merr != nil {
						return errorMessage(fmt.Errorf("site %s: marking %s unreachable: %w", s.cfg.Name, sq.Target, merr))
					}
				}
				truncated = true
				s.log.LogAttrs(ctx, slog.LevelWarn, "gather truncated",
					slog.String("trace_id", msg.TraceID), slog.String("query", clipQuery(msg.Query)),
					slog.Int("rounds", round), slog.Int("pending", len(fresh)))
				break
			}
			askedAny = true
			fanout += len(fresh)
			// Subqueries address disjoint parts of the hierarchy; the
			// dispatcher fetches them concurrently, coalescing duplicate
			// in-flight fetches and batching per destination site (the
			// splice itself stays serialized).
			tc := time.Now()
			results, batchSpans := s.dispatchSubqueries(ctx, fresh, msg.TraceID)
			commTime += time.Since(tc)
			if span != nil {
				span.Children = append(span.Children, batchSpans...)
				for _, r := range results {
					if r.span != nil {
						span.Children = append(span.Children, r.span)
					}
				}
			}
			for i, r := range results {
				sub := r.frag
				if r.err == nil {
					fetchedBytes += int64(r.bytes)
				}
				if r.err != nil {
					// Partial answer: the target's owner did not respond
					// within the remaining budget. Splice an unreachable
					// placeholder instead of failing the whole query; the
					// seen-set guarantees the subquery is not reissued.
					if merr := s.markUnreachable(ans, unreachable, fresh[i].Target); merr != nil {
						return errorMessage(fmt.Errorf("site %s: marking %s unreachable: %w", s.cfg.Name, fresh[i].Target, merr))
					}
					continue
				}
				// The site-cache merge already happened in the dispatch
				// layer, before the fetch's flight retired (dispatch.go);
				// only the answer (and working copy) splices remain.
				var mergeErr error
				s.cpu.Do(func() {
					if work != nil {
						mergeErr = work.MergeFragment(sub)
					}
					if mergeErr == nil {
						mergeErr = ans.MergeFragment(sub)
					}
				})
				if mergeErr != nil {
					return errorMessage(fmt.Errorf("site %s: splicing subanswer: %w", s.cfg.Name, mergeErr))
				}
				// Unreachable markers carry no data, so merging drops them;
				// re-apply the downstream site's partial-answer list here.
				for _, us := range r.downs {
					p, perr := xmldb.ParseIDPath(us)
					if perr != nil {
						continue
					}
					if merr := s.markUnreachable(ans, unreachable, p); merr != nil {
						return errorMessage(fmt.Errorf("site %s: marking %s unreachable: %w", s.cfg.Name, p, merr))
					}
				}
			}
			if work == nil {
				// Depth-0 plans finish after one fetch round: every
				// subanswer is complete for its scope by induction.
				var mergeErr error
				s.cpu.Do(func() {
					mergeErr = ans.MergeFragment(res.Fragment)
				})
				if mergeErr != nil {
					return errorMessage(fmt.Errorf("site %s: merging local result: %w", s.cfg.Name, mergeErr))
				}
				if prov != nil {
					prov.Merge(opts.Prov)
				}
				break
			}
		}
	}
	if !askedAny {
		s.Metrics.CacheHits.Inc()
	} else {
		s.Metrics.CacheMisses.Inc()
	}
	if s.cache != nil {
		// Refresh the recency of every cached unit this answer used, so the
		// budget policy evicts the units queries are not asking for.
		s.cache.touchAnswer(ans.Root, s.cfg.Clock())
	}
	s.Metrics.Breakdown.Add("execute-qeg", execTime)
	s.Metrics.Breakdown.Add("communication", commTime)

	var freshness *trace.FreshnessReport
	if prov != nil {
		freshness = freshnessReport(prov, fetchedBytes)
		if lag, ok := s.replicaLagForQuery(msg.Query); ok {
			// The answer came (at least partly) from replicated data: record
			// how far behind the owner this site was when it served.
			freshness.ReplicaLagSec = lag
		}
		s.Metrics.AnswerStaleness.Observe(prov.AgeMax)
		s.Metrics.CacheAge.Observe(prov.MeanAge())
		if m, ok := prov.MinMargin(); ok {
			s.Metrics.PredicateMargin.Observe(m)
		}
		s.Metrics.AnswerCacheBytes.Add(prov.CachedBytes)
		s.Metrics.AnswerOwnedBytes.Add(prov.OwnedBytes)
		s.Metrics.AnswerFetchedBytes.Add(fetchedBytes)
	}

	var out string
	s.cpu.Do(func() {
		out = ans.Root.StringSized(ans.Size())
	})
	total := time.Since(t0)
	s.Metrics.Breakdown.Add("rest", total-execTime-commTime)
	res := &Message{Kind: KindResult, Fragment: out, Truncated: truncated}
	if len(unreachable) > 0 {
		s.Metrics.PartialAnswers.Inc()
		res.Unreachable = make([]string, 0, len(unreachable))
		for k := range unreachable {
			res.Unreachable = append(res.Unreachable, k)
		}
		sort.Strings(res.Unreachable)
	}
	if span != nil {
		span.DurationUS = total.Microseconds()
		span.AddStage("create-plan", planTime)
		span.AddStage("execute-qeg", execTime)
		span.AddStage("communication", commTime)
		span.AddStage("rest", total-execTime-commTime)
		span.CacheHit = !askedAny
		span.Subqueries = fanout
		span.BytesOut = len(out)
		span.Partial = len(res.Unreachable) > 0
		span.Unreachable = res.Unreachable
		span.Truncated = truncated
		span.Freshness = freshness
		finishSpan(span, stats)
		res.Span = span
	}
	s.log.LogAttrs(ctx, slog.LevelDebug, "query served",
		slog.String("trace_id", msg.TraceID), slog.Duration("dur", total),
		slog.Bool("cache_hit", !askedAny), slog.Int("fanout", fanout),
		slog.Int("unreachable", len(res.Unreachable)))
	if s.cfg.SlowQueryThreshold > 0 && total >= s.cfg.SlowQueryThreshold {
		s.log.LogAttrs(ctx, slog.LevelWarn, "slow query",
			slog.String("trace_id", msg.TraceID), slog.String("query", clipQuery(msg.Query)),
			slog.Duration("dur", total), slog.Duration("threshold", s.cfg.SlowQueryThreshold),
			slog.Bool("cache_hit", !askedAny), slog.Int("fanout", fanout))
	}
	if prov != nil && s.cfg.StaleAnswerThreshold > 0 && prov.AgeMax >= s.cfg.StaleAnswerThreshold.Seconds() {
		attrs := []slog.Attr{
			slog.String("trace_id", msg.TraceID), slog.String("query", clipQuery(msg.Query)),
			slog.Float64("max_age_sec", prov.AgeMax), slog.Float64("mean_age_sec", prov.MeanAge()),
			slog.Int("cached_units", prov.CachedUnits),
		}
		if m, ok := prov.MinMargin(); ok {
			attrs = append(attrs, slog.Float64("min_margin_sec", m))
		}
		s.log.LogAttrs(ctx, slog.LevelWarn, "stale answer", attrs...)
	}
	return res
}

// clipQuery bounds query text in log records.
func clipQuery(q string) string {
	if len(q) <= 96 {
		return q
	}
	return q[:95] + "…"
}

// freshnessReport converts the evaluation ledger into the wire-shaped
// report the span carries, sorting margins for deterministic output.
func freshnessReport(p *qeg.Provenance, fetchedBytes int64) *trace.FreshnessReport {
	fr := &trace.FreshnessReport{
		OwnedUnits:   p.OwnedUnits,
		CachedUnits:  p.CachedUnits,
		OwnedBytes:   p.OwnedBytes,
		CachedBytes:  p.CachedBytes,
		FetchedBytes: fetchedBytes,
		AgedUnits:    p.AgedUnits,
		MeanAgeSec:   p.MeanAge(),
		MaxAgeSec:    p.AgeMax,
		MarginChecks: p.MarginChecks,
	}
	if len(p.Margins) > 0 {
		fr.Margins = make([]trace.PredicateMargin, 0, len(p.Margins))
		for pred, st := range p.Margins {
			fr.Margins = append(fr.Margins, trace.PredicateMargin{Pred: pred, Checks: st.Checks, MinSec: st.Min})
		}
		sort.Slice(fr.Margins, func(i, j int) bool { return fr.Margins[i].Pred < fr.Margins[j].Pred })
	}
	return fr
}

// mergeCache folds a sub-answer into the site database through the
// copy-on-write write path: take the writer mutex, build the next version
// from the latest published one, publish. Queries in flight keep reading
// the version they pinned; the next snapshot load sees the cached data.
// On budgeted sites the merge and any evictions it forces commit as one
// transaction, so no published version exceeds the budget by more than the
// units in-flight fetches are actively installing (cache.go).
func (s *Site) mergeCache(frag *xmldb.Node) error {
	if s.cfg.CoarseLocking {
		s.coarse.Lock()
		defer s.coarse.Unlock()
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	st := s.state.Load()
	w := st.store.Begin()
	if err := w.MergeFragment(frag); err != nil {
		return err
	}
	var evicted []string
	clock := s.cfg.Clock()
	if s.cache != nil {
		s.cache.noteFetched(frag, clock)
		evicted = s.evictToBudgetLocked(w)
	}
	if s.dur != nil {
		// Merge and forced evictions are one record: replaying half of the
		// pair would leave a store no live execution could have published.
		ops := []walOp{{Op: opMerge, Frag: frag.String(), Clock: clock, Cached: s.cache != nil}}
		if len(evicted) > 0 {
			ops = append(ops, walOp{Op: opEvict, Paths: evicted})
		}
		// Cache merges are not acked writes; no walWait.
		s.walAppend(ops...)
	}
	s.publishLocked(&siteState{store: w.Commit(), owned: st.owned, migrated: st.migrated})
	return nil
}

// finishSpan folds the context-scoped resilience tallies into the span.
func finishSpan(span *trace.Span, stats *transport.CallStats) {
	if stats != nil {
		span.Retries = stats.Retries.Load()
		span.DeadlineHits = stats.DeadlineHits.Load()
	}
}

// markUnreachable splices an unreachable placeholder for the path into the
// answer fragment and records it in the result's unreachable set.
func (s *Site) markUnreachable(ans *fragment.Store, set map[string]bool, p xmldb.IDPath) error {
	var err error
	s.cpu.Do(func() {
		err = ans.MarkUnreachable(p)
	})
	if err != nil {
		return err
	}
	set[p.Key()] = true
	return nil
}

// fetchSubquery routes one subquery to the owner of its target node,
// retrying transient failures within the context's deadline. It returns the
// answer fragment, the remote site's own unreachable-path list (partial
// answers compose across hops), and — when traceID is set — the remote
// hop's span (a synthetic error span when the fetch failed, so the trace
// tree still shows where a partial answer lost its subtree). CPU is
// consumed for encode/decode; the network wait itself is not billed to
// this site's capacity.
func (s *Site) fetchSubquery(ctx context.Context, sq qeg.Subquery, traceID string) (*xmldb.Node, []string, int, *trace.Span, error) {
	s.Metrics.Subqueries.Inc()
	s.Metrics.SubqueryRPCs.Inc()
	errSpan := func(site string, err error) *trace.Span {
		if traceID == "" {
			return nil
		}
		return &trace.Span{TraceID: traceID, Site: site, Query: sq.Query, Op: "query", Error: err.Error()}
	}
	owner, err := s.cfg.DNS.Resolve(sq.Target)
	if err != nil {
		err = fmt.Errorf("site %s: resolving %s: %w", s.cfg.Name, sq.Target, err)
		return nil, nil, 0, errSpan(sq.Target.String(), err), err
	}
	var payload []byte
	s.cpu.Do(func() {
		m := &Message{Kind: KindQuery, Query: sq.Query, TraceID: traceID}
		m.StampDeadline(ctx)
		payload = m.Encode()
	})
	respB, err := s.call.Call(ctx, owner, payload)
	if err != nil {
		err = fmt.Errorf("site %s: calling %s: %w", s.cfg.Name, owner, err)
		return nil, nil, 0, errSpan(owner, err), err
	}
	var frag *xmldb.Node
	var unreachable []string
	var childSpan *trace.Span
	var fragBytes int
	var derr error
	s.cpu.Do(func() {
		var resp *Message
		resp, derr = DecodeMessage(respB)
		if derr != nil {
			return
		}
		if e := resp.AsError(); e != nil {
			derr = e
			return
		}
		unreachable = resp.Unreachable
		childSpan = resp.Span
		fragBytes = len(resp.Fragment)
		frag, derr = xmldb.ParseString(resp.Fragment)
	})
	if derr != nil {
		derr = fmt.Errorf("site %s: subanswer from %s: %w", s.cfg.Name, owner, derr)
		return nil, nil, 0, errSpan(owner, derr), derr
	}
	return frag, unreachable, fragBytes, childSpan, nil
}

// handleUpdate applies a sensor update to an owned node, stamping it with
// the site clock. Updates for nodes that migrated away are forwarded to
// the current owner (one hop; the registry is authoritative).
func (s *Site) handleUpdate(ctx context.Context, msg *Message) *Message {
	p, err := xmldb.ParseIDPath(msg.Path)
	if err != nil {
		return errorMessage(err)
	}
	var owned bool
	var applyErr error
	var lsn uint64
	s.cpu.Do(func() {
		s.wmu.Lock()
		st := s.state.Load()
		owned = st.owned[p.Key()]
		if owned {
			lsn, applyErr = s.applyUpdateLocked(st, p, msg.Fields, msg.Attrs)
		}
		s.wmu.Unlock()
		if owned {
			s.updateCost()
		}
	})
	if applyErr != nil {
		return errorMessage(applyErr)
	}
	if owned {
		// Durability point: the ack leaves only after the commit's WAL
		// record is on disk (group commit — concurrent updates share one
		// fsync). The writer mutex is long released, so fsync latency never
		// serializes other commits.
		s.walWait(lsn)
		s.Metrics.Updates.Inc()
		return &Message{Kind: KindOK}
	}
	// Forward to the current owner per the registry (stale-DNS path after
	// a migration).
	s.Metrics.Forwards.Inc()
	owner, ok := s.cfg.DNS.ResolveExact(p)
	if !ok || owner == s.cfg.Name {
		return errorMessage(fmt.Errorf("site %s: update for unowned node %s with no forwarding target", s.cfg.Name, p))
	}
	s.log.LogAttrs(ctx, slog.LevelDebug, "update forwarded",
		slog.String("trace_id", msg.TraceID), slog.String("path", msg.Path), slog.String("to", owner))
	msg.StampDeadline(ctx)
	respB, err := s.call.Call(ctx, owner, msg.Encode())
	if err != nil {
		return errorMessage(err)
	}
	resp, err := DecodeMessage(respB)
	if err != nil {
		return errorMessage(err)
	}
	return resp
}

func (s *Site) updateCost() {
	if s.cfg.UpdateWork > 0 {
		spin(s.cfg.UpdateWork)
	}
}

// applyUpdateLocked builds and publishes the next store version with the
// update applied, returning the commit's WAL LSN (0 when not durable).
// Callers hold wmu; st is the version they loaded under it.
func (s *Site) applyUpdateLocked(st *siteState, p xmldb.IDPath, fields, attrs map[string]string) (uint64, error) {
	if s.cfg.CoarseLocking {
		s.coarse.Lock()
		defer s.coarse.Unlock()
	}
	ts := s.cfg.Clock()
	w := st.store.Begin()
	if err := w.ApplyUpdate(p, fields, attrs, ts); err != nil {
		return 0, fmt.Errorf("site %s: owned node %s missing from store", s.cfg.Name, p)
	}
	lsn := s.walAppend(walOp{Op: opUpdate, Path: p.String(), Fields: fields, Attrs: attrs, TS: ts})
	s.publishLocked(&siteState{store: w.Commit(), owned: st.owned, migrated: st.migrated})
	// Queue the committed path on every replication stream covering it;
	// the flusher re-reads the node's post-commit state at ship time.
	s.repl.observeLocked(p)
	if s.summaries != nil {
		// Cached aggregate summaries over the updated subtree are stale the
		// moment the new version publishes; drop them in the commit path.
		s.summaries.invalidate(p)
	}
	return lsn, nil
}

// forwardTarget reports whether the query's LCA falls inside a subtree
// this site delegated away, and to whom.
func (s *Site) forwardTarget(query string) (string, bool) {
	st := s.state.Load()
	if len(st.migrated) == 0 {
		return "", false
	}
	lca, err := qeg.LCAPath(query)
	if err != nil {
		return "", false
	}
	for q := lca; len(q) > 0; q = q[:len(q)-1] {
		if to, ok := st.migrated[xmldb.IDPath(q).Key()]; ok {
			return to, true
		}
	}
	return "", false
}

func (s *Site) rootName() string {
	return s.state.Load().store.Root.Name
}

func (s *Site) rootID() string {
	return s.state.Load().store.Root.ID()
}

// copyOwned returns a private copy of an owned table about to change.
// Published maps are immutable: readers iterate them without locks.
func copyOwned(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// copyMigrated is copyOwned for the forwarding table.
func copyMigrated(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// spin holds the caller's CPU slot for d. Sleeping (rather than busy
// waiting) keeps simulated site capacity independent of host core count.
func spin(d time.Duration) {
	time.Sleep(d)
}
