package site

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"irisnet/internal/naming"
	"irisnet/internal/transport"
	"irisnet/internal/workload"
	"irisnet/internal/xmldb"
)

// spaceUnder returns a parking-space path below the given neighborhood.
func spaceUnder(t *testing.T, d *testDeployment, nb xmldb.IDPath) xmldb.IDPath {
	t.Helper()
	prefix := nb.Key() + "/"
	for _, p := range d.db.SpacePaths {
		if strings.HasPrefix(p.Key(), prefix) {
			return p
		}
	}
	t.Fatalf("no space under %s", nb)
	return nil
}

// addReplicaSite wires an empty site (no owned data) into a test
// deployment, the way the bench harness adds read replicas.
func addReplicaSite(t *testing.T, d *testDeployment, name string, mut func(*Config)) *Site {
	t.Helper()
	sc := Config{
		Name:     name,
		Service:  workload.Service,
		Net:      d.net,
		DNS:      naming.NewClient(d.registry, workload.Service, time.Hour, nil),
		Registry: d.registry,
		Schema:   d.db.Schema,
		CPUSlots: 1,
		Clock:    d.clock,
	}
	if mut != nil {
		mut(&sc)
	}
	s := New(sc, workload.RootName, workload.RootID)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	d.sites[name] = s
	return s
}

// sendUpdate applies a sensor update through the wire path.
func sendUpdate(t *testing.T, d *testDeployment, to string, p xmldb.IDPath, value string) {
	t.Helper()
	msg := &Message{Kind: KindUpdate, Path: p.String(), Fields: map[string]string{"available": value}}
	respB, err := d.net.Call(to, msg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := DecodeMessage(respB)
	if e := resp.AsError(); e != nil {
		t.Fatalf("update: %v", e)
	}
}

// awaitValue polls the site until a query for p returns the value, failing
// after two seconds — how a test waits out the asynchronous delta stream.
func awaitValue(t *testing.T, d *testDeployment, siteName string, p xmldb.IDPath, value string) {
	t.Helper()
	q := p.String()
	deadline := time.Now().Add(2 * time.Second)
	for {
		frag := d.query(t, siteName, q)
		got := extracted(t, frag, q, d.clock)
		if len(got) == 1 && strings.Contains(got[0], value) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("site %s never saw %q at %s; last answer %v", siteName, value, p, got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReplicationStreamAndServe(t *testing.T) {
	d := deployCfg(t, false, transport.SimConfig{}, func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
	})
	rep := addReplicaSite(t, d, "replica-1", func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
	})

	nbPath := d.db.NeighborhoodPath(0, 0)
	ownerName := d.assign.OwnerOf(nbPath)
	owner := d.sites[ownerName]
	if err := owner.AddReadReplica(nbPath, "replica-1", 30); err != nil {
		t.Fatal(err)
	}

	// The replica is registered next to the owner's DNS entry — and under
	// every transferred name, so resolvers that match a deeper name (a
	// block's own entry) still see the replica set.
	reps := d.registry.LookupReplicas(naming.DNSName(nbPath, workload.Service))
	if len(reps) != 1 || reps[0].Site != "replica-1" || reps[0].MaxLagSec != 30 {
		t.Fatalf("registered replicas = %+v", reps)
	}
	if reps := d.registry.LookupReplicas(naming.DNSName(d.db.BlockPath(0, 0, 1), workload.Service)); len(reps) != 1 {
		t.Fatalf("block-level replica registration missing: %+v", reps)
	}

	// The seed alone answers queries over the replicated subtree with the
	// same bytes the authoritative evaluation produces, without asking the
	// owner: the replica holds status-complete copies.
	q := d.db.BlockQuery(0, 0, 1)
	want := centralAnswer(t, d, q)
	got := extracted(t, d.query(t, "replica-1", q), q, d.clock)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("replica answer = %v, want %v", got, want)
	}
	if asked := rep.Metrics.Subqueries.Value(); asked != 0 {
		t.Fatalf("replica issued %d subqueries for replicated data", asked)
	}

	// A committed owner update streams to the replica within a few flush
	// intervals.
	target := spaceUnder(t, d, nbPath)
	sendUpdate(t, d, ownerName, target, "replicated-value")
	awaitValue(t, d, "replica-1", target, "replicated-value")

	if n := rep.Metrics.ReplicaBatchesApplied.Value(); n == 0 {
		t.Fatal("no replication batches applied")
	}
	if n := owner.Metrics.ReplicaBatchesSent.Value(); n == 0 {
		t.Fatal("no replication batches sent")
	}
	if w, ok := rep.ReplicaWatermark(nbPath); !ok || w <= 0 {
		t.Fatalf("replica watermark = %v, %v", w, ok)
	}

	// Roles and lag surface in the debug views.
	if role := rep.Debug().Role; role != "replica" {
		t.Fatalf("replica role = %q", role)
	}
	od := owner.Debug()
	if od.Role != "owner" || len(od.ReplicatesTo) != 1 {
		t.Fatalf("owner debug = role %q, replicatesTo %v", od.Role, od.ReplicatesTo)
	}
	if _, ok := rep.Debug().ReplicaOf[nbPath.Key()]; !ok {
		t.Fatalf("replica debug missing subscription: %v", rep.Debug().ReplicaOf)
	}

	// Removing the replica deregisters it and stops the stream.
	owner.RemoveReadReplica(nbPath, "replica-1")
	if reps := d.registry.LookupReplicas(naming.DNSName(nbPath, workload.Service)); len(reps) != 0 {
		t.Fatalf("replica still registered after removal: %+v", reps)
	}
	if reps := d.registry.LookupReplicas(naming.DNSName(d.db.BlockPath(0, 0, 1), workload.Service)); len(reps) != 0 {
		t.Fatalf("block-level registration survived removal: %+v", reps)
	}
	if to := owner.Debug().ReplicatesTo; len(to) != 0 {
		t.Fatalf("stream still live after removal: %v", to)
	}
}

func TestReplicaPromotion(t *testing.T) {
	d := deployCfg(t, false, transport.SimConfig{}, func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
	})
	rep := addReplicaSite(t, d, "replica-1", func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
	})
	nbPath := d.db.NeighborhoodPath(0, 0)
	ownerName := d.assign.OwnerOf(nbPath)
	if err := d.sites[ownerName].AddReadReplica(nbPath, "replica-1", 30); err != nil {
		t.Fatal(err)
	}
	target := spaceUnder(t, d, nbPath)
	sendUpdate(t, d, ownerName, target, "pre-failover")
	awaitValue(t, d, "replica-1", target, "pre-failover")

	// The owner dies; the surviving replica promotes itself.
	d.net.Partition(ownerName)
	if err := rep.Promote(nbPath); err != nil {
		t.Fatal(err)
	}
	if !rep.Owns(nbPath) || !rep.Owns(target) {
		t.Fatal("promoted replica does not own the transferred nodes")
	}
	if role := rep.Debug().Role; role != "owner" {
		t.Fatalf("promoted role = %q", role)
	}
	// The registry repointed every transferred name, and the replica set no
	// longer lists the promoted site.
	fresh := naming.NewClient(d.registry, workload.Service, 0, nil)
	if owner, _ := fresh.ResolveExact(target); owner != "replica-1" {
		t.Fatalf("registry owner of %s = %q after promotion", target, owner)
	}
	if reps := d.registry.LookupReplicas(naming.DNSName(nbPath, workload.Service)); len(reps) != 0 {
		t.Fatalf("promoted site still registered as replica: %+v", reps)
	}
	// Updates and queries continue against the new owner: no data lost, no
	// answer behind what the replica already served.
	sendUpdate(t, d, "replica-1", target, "post-failover")
	awaitValue(t, d, "replica-1", target, "post-failover")
	if n := rep.Metrics.Updates.Value(); n != 1 {
		t.Fatalf("promoted site applied %d updates, want 1", n)
	}
	// A second promotion attempt fails: the subscription is gone.
	if err := rep.Promote(nbPath); err == nil {
		t.Fatal("double promotion should fail")
	}
}

// TestReplicationRetryAfterLostAck covers the applied-but-unacked batch:
// a proxy in front of the replica delivers every message but swallows
// delta-batch acks while "lossy" mode is on, so the owner keeps retrying
// batches the replica has already applied. Commits made between the lost
// ack and the successful retry ride the retried batch — which carries
// different content than the original transmission — and must not be
// discarded as a duplicate, or they would never replicate at all.
func TestReplicationRetryAfterLostAck(t *testing.T) {
	d := deployCfg(t, false, transport.SimConfig{}, func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
	})
	addReplicaSite(t, d, "replica-1", func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
	})
	nbPath := d.db.NeighborhoodPath(0, 0)
	ownerName := d.assign.OwnerOf(nbPath)
	owner := d.sites[ownerName]

	// Every delta batch reaches the replica, but acks are swallowed until
	// a batch carries the second update's value — so the only batch the
	// owner ever sees acknowledged is a retry whose content differs from
	// the transmission the replica first applied. The replica must not
	// discard that retry as a duplicate. A drop counter pins that the
	// lossy phase actually exercised retries.
	var drops atomic.Int64
	if err := d.net.Register("lossy", func(ctx context.Context, payload []byte) ([]byte, error) {
		resp, err := d.net.CallContext(ctx, "replica-1", payload)
		if err != nil {
			return nil, err
		}
		if m, derr := DecodeMessage(payload); derr == nil &&
			m.Kind == KindReplicate && m.Fragment != "" &&
			!strings.Contains(m.Fragment, "rides-the-retry") {
			drops.Add(1)
			return nil, errors.New("ack lost")
		}
		return resp, nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := owner.AddReadReplica(nbPath, "lossy", 30); err != nil {
		t.Fatal(err)
	}
	target := spaceUnder(t, d, nbPath)
	sendUpdate(t, d, ownerName, target, "acked-nowhere")
	// The replica applies the batch even though the owner never learns.
	awaitValue(t, d, "replica-1", target, "acked-nowhere")

	// A second commit lands while the first batch is still unacknowledged;
	// from here on the retried batch carries both and its ack goes through.
	var target2 xmldb.IDPath
	for _, p := range d.db.SpacePaths {
		if strings.HasPrefix(p.Key(), nbPath.Key()+"/") && p.Key() != target.Key() {
			target2 = p
			break
		}
	}
	if target2 == nil {
		t.Fatal("need a second space under the neighborhood")
	}
	sendUpdate(t, d, ownerName, target2, "rides-the-retry")
	awaitValue(t, d, "replica-1", target2, "rides-the-retry")
	if drops.Load() == 0 {
		t.Fatal("lossy phase dropped no acks; the retry path was not exercised")
	}
}

// TestReplicationPartitionedReplicaDoesNotStallOthers pins the concurrent
// flush: a black-holed replica's stream (deliberately first in flush
// order) must not delay the healthy replica's batches, whose delivery
// here would otherwise wait out the dead stream's full call timeout and
// retries.
func TestReplicationPartitionedReplicaDoesNotStallOthers(t *testing.T) {
	mut := func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
		c.CallTimeout = time.Second
	}
	d := deployCfg(t, false, transport.SimConfig{}, mut)
	addReplicaSite(t, d, "replica-1", mut)
	addReplicaSite(t, d, "replica-2", mut)
	nbPath := d.db.NeighborhoodPath(0, 0)
	ownerName := d.assign.OwnerOf(nbPath)
	owner := d.sites[ownerName]
	if err := owner.AddReadReplica(nbPath, "replica-2", 30); err != nil {
		t.Fatal(err)
	}
	if err := owner.AddReadReplica(nbPath, "replica-1", 30); err != nil {
		t.Fatal(err)
	}
	d.net.Partition("replica-2")
	target := spaceUnder(t, d, nbPath)
	sendUpdate(t, d, ownerName, target, "past-partition")
	awaitValue(t, d, "replica-1", target, "past-partition")
	d.net.Heal("replica-2")
}

// TestRemoveReadReplicaAfterDelegation pins deregistration to the names
// AddReadReplica actually registered: ownership under the root changes
// while the stream is live, and removal must still clear every replica
// entry, not just the ones under the current owned set.
func TestRemoveReadReplicaAfterDelegation(t *testing.T) {
	d := deployCfg(t, false, transport.SimConfig{}, func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
	})
	addReplicaSite(t, d, "replica-1", func(c *Config) {
		c.ReplicaFlushInterval = 2 * time.Millisecond
	})
	nbPath := d.db.NeighborhoodPath(0, 0)
	ownerName := d.assign.OwnerOf(nbPath)
	owner := d.sites[ownerName]
	if err := owner.AddReadReplica(nbPath, "replica-1", 30); err != nil {
		t.Fatal(err)
	}
	blockPath := d.db.BlockPath(0, 0, 1)
	if reps := d.registry.LookupReplicas(naming.DNSName(blockPath, workload.Service)); len(reps) != 1 {
		t.Fatalf("block-level replica registration missing: %+v", reps)
	}
	// Ownership under the replicated root changes mid-stream.
	if err := owner.Delegate(blockPath, "root-site"); err != nil {
		t.Fatal(err)
	}
	owner.RemoveReadReplica(nbPath, "replica-1")
	for _, p := range append([]xmldb.IDPath{nbPath, blockPath}, d.db.SpacePaths...) {
		if !strings.HasPrefix(p.Key(), nbPath.Key()) {
			continue
		}
		if reps := d.registry.LookupReplicas(naming.DNSName(p, workload.Service)); len(reps) != 0 {
			t.Fatalf("replica entry for %s survived removal: %+v", p, reps)
		}
	}
}

func TestReplicateRejectsUnknownSubscription(t *testing.T) {
	d := deploy(t, false)
	msg := &Message{Kind: KindReplicate, Path: d.db.NeighborhoodPath(0, 0).String(), Seq: 1, ClockSec: 1}
	respB, err := d.net.Call("root-site", msg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := DecodeMessage(respB)
	if resp.AsError() == nil {
		t.Fatal("replicate without a subscription should fail")
	}
}
