package site

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"irisnet/internal/qeg"
	"irisnet/internal/trace"
	"irisnet/internal/xmldb"
)

// subResult is the outcome of one dispatched subquery, index-aligned with
// the fresh slice handed to dispatchSubqueries. span, when set, is a span to
// hang under the querying hop (the remote hop's span on the single-message
// path, a local marker on the coalesced path); batched entries leave it nil
// because their spans travel as children of the batch span.
type subResult struct {
	frag  *xmldb.Node
	downs []string // remote site's unreachable paths (partial answers compose)
	bytes int      // wire size of the fetched fragment (freshness ledger)
	span  *trace.Span
	err   error
}

// flight is one in-progress upstream fetch that concurrent queries for the
// same generalized subquery share. The leader performs the fetch (possibly
// inside a batch) and publishes the outcome; followers select on done
// against their own context so a slow waiter cannot leak the flight. The
// result type is generic because raw subqueries (subResult) and aggregate
// subrequests (aggResult) share the mechanism but not the payload.
type flight[T any] struct {
	done chan struct{}
	res  T
}

// flightGroup dedups identical in-flight subqueries by qeg.Subquery.Key()
// (singleflight). Keys carry the full generalized query text including its
// consistency predicates, so joiners can never be handed a fragment staler
// than their own freshness tolerance: a different tolerance is a different
// key, hence a different flight.
type flightGroup[T any] struct {
	mu      sync.Mutex
	flights map[string]*flight[T]
}

func newFlightGroup[T any]() *flightGroup[T] {
	return &flightGroup[T]{flights: map[string]*flight[T]{}}
}

// join returns the flight for key and whether the caller leads it. A leader
// must eventually call finish exactly once; followers wait on done.
func (g *flightGroup[T]) join(key string) (*flight[T], bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f, false
	}
	f := &flight[T]{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// finish publishes the leader's outcome and retires the flight. The key is
// removed before done closes, so no new joiner can observe a completed
// flight (and thus a fragment fetched before its own query even started
// resolving — the freshness guarantee above depends on this ordering).
func (g *flightGroup[T]) finish(key string, f *flight[T], r T) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	f.res = r
	close(f.done)
}

// pendingSub is one subquery this dispatch call must actually send, with its
// index into the fresh slice.
type pendingSub struct {
	idx int
	sq  qeg.Subquery
}

// cacheFetched folds a freshly fetched fragment into the site cache before
// its flight retires, so a query arriving after the flight finishes finds
// the data cached — there is no window where a subquery neither joins the
// flight nor hits the cache. On a merge failure (a "cannot happen" path:
// the same validation accepted the fragment into the answer) the fetch is
// reported failed, marking just this subtree unreachable. No-op when err is
// already set or caching is off.
func (s *Site) cacheFetched(frag *xmldb.Node, err *error) *xmldb.Node {
	if *err != nil || !s.cfg.Caching || frag == nil {
		return frag
	}
	if s.cache != nil {
		// Pin the fragment's units across the merge: the budget eviction
		// inside the transaction must not cancel the fetch it is committing
		// (see cacheManager.pinFragment).
		s.cache.pinFragment(frag)
		defer s.cache.unpinFragment(frag)
	}
	if cerr := s.mergeCache(frag); cerr != nil {
		*err = fmt.Errorf("site %s: caching subanswer: %w", s.cfg.Name, cerr)
		return nil
	}
	return frag
}

// errSpan builds the synthetic span recorded when a fetch fails before a
// remote span could be produced, so the trace tree still shows where a
// partial answer lost its subtree.
func errSpan(traceID, site, query string, err error) *trace.Span {
	if traceID == "" {
		return nil
	}
	return &trace.Span{TraceID: traceID, Site: site, Query: query, Op: "query", Error: err.Error()}
}

// dispatchSubqueries fetches every fresh subquery concurrently and returns
// results index-aligned with fresh, plus the batch-level spans to attach to
// the querying hop. Two optimizations apply on top of the plain
// one-message-per-subquery path:
//
//   - Coalescing (caching sites): identical in-flight subqueries share one
//     upstream fetch through the site's flightGroup. The first query to want
//     a key leads the flight; concurrent queries join as followers and
//     splice the same returned fragment. Followers keep their own context
//     (a canceled waiter abandons the flight without killing it) and fall
//     back to a private fetch when the flight itself fails, so a leader's
//     tight deadline cannot poison its followers.
//
//   - Batching: subqueries bound for the same owner site ship as one
//     KindBatch message (split by cfg.BatchByteCap) instead of N separate
//     round trips, sharing one deadline, one retry budget and one span.
//
// Metrics: Subqueries counts subqueries actually sent upstream, SubqueryRPCs
// counts network sends (so Subqueries - SubqueryRPCs is the messaging saved
// by batching), and Coalesced counts subqueries answered by joining a
// flight.
func (s *Site) dispatchSubqueries(ctx context.Context, fresh []qeg.Subquery, traceID string) ([]subResult, []*trace.Span) {
	results := make([]subResult, len(fresh))

	// Partition into flight leaders/singles (must fetch) and followers
	// (wait on someone else's fetch). Keys within one dispatch call are
	// distinct (handleQuery's seen-set), so a follower's leader is always
	// another query's goroutine.
	var toFetch []pendingSub
	type waiter struct {
		idx int
		sq  qeg.Subquery
		fl  *flight[subResult]
	}
	var waiters []waiter
	type ledFlight struct {
		key string
		fl  *flight[subResult]
	}
	leaders := map[int]ledFlight{}
	if s.cfg.Caching && !s.cfg.DisableCoalescing {
		for i, sq := range fresh {
			key := sq.Key()
			fl, leads := s.flights.join(key)
			if leads {
				leaders[i] = ledFlight{key, fl}
				toFetch = append(toFetch, pendingSub{i, sq})
			} else {
				waiters = append(waiters, waiter{i, sq, fl})
			}
		}
	} else {
		for i, sq := range fresh {
			toFetch = append(toFetch, pendingSub{i, sq})
		}
	}

	// A leader must complete its flight on every outcome, or followers hang
	// until their own contexts expire.
	finishLeader := func(idx int) {
		if led, ok := leaders[idx]; ok {
			s.flights.finish(led.key, led.fl, results[idx])
		}
	}

	var wg sync.WaitGroup
	single := func(p pendingSub) {
		frag, downs, nbytes, span, err := s.fetchSubquery(ctx, p.sq, traceID)
		frag = s.cacheFetched(frag, &err)
		results[p.idx] = subResult{frag: frag, downs: downs, bytes: nbytes, span: span, err: err}
		finishLeader(p.idx)
	}

	var spanMu sync.Mutex
	var batchSpans []*trace.Span
	if s.cfg.DisableBatching {
		for _, p := range toFetch {
			wg.Add(1)
			go func(p pendingSub) { defer wg.Done(); single(p) }(p)
		}
	} else {
		// Group by resolved owner; singleton groups keep the plain
		// KindQuery path (a batch of one would only add envelope overhead).
		groups := map[string][]pendingSub{}
		var order []string
		for _, p := range toFetch {
			owner, err := s.cfg.DNS.Resolve(p.sq.Target)
			if err != nil {
				err = fmt.Errorf("site %s: resolving %s: %w", s.cfg.Name, p.sq.Target, err)
				results[p.idx] = subResult{err: err, span: errSpan(traceID, p.sq.Target.String(), p.sq.Query, err)}
				finishLeader(p.idx)
				continue
			}
			if _, ok := groups[owner]; !ok {
				order = append(order, owner)
			}
			groups[owner] = append(groups[owner], p)
		}
		for _, owner := range order {
			group := groups[owner]
			if len(group) == 1 {
				wg.Add(1)
				go func(p pendingSub) { defer wg.Done(); single(p) }(group[0])
				continue
			}
			for _, piece := range splitByByteCap(group, s.cfg.BatchByteCap) {
				if len(piece) == 1 {
					// A piece collapses to one entry when a single entry's
					// encoded size exceeds the byte cap (or the cap leaves a
					// remainder of one). A batch of one buys nothing, so fall
					// back to a plain — possibly oversized — KindQuery
					// message rather than a degenerate batch.
					wg.Add(1)
					go func(p pendingSub) { defer wg.Done(); single(p) }(piece[0])
					continue
				}
				wg.Add(1)
				go func(owner string, piece []pendingSub) {
					defer wg.Done()
					if sp := s.sendBatch(ctx, owner, piece, traceID, results, finishLeader); sp != nil {
						spanMu.Lock()
						batchSpans = append(batchSpans, sp)
						spanMu.Unlock()
					}
				}(owner, piece)
			}
		}
	}

	for _, w := range waiters {
		wg.Add(1)
		go func(w waiter) {
			defer wg.Done()
			select {
			case <-w.fl.done:
				if w.fl.res.err != nil {
					// The flight failed — possibly the leader's deadline,
					// not ours. Fall back to a private fetch rather than
					// inheriting the leader's failure.
					frag, downs, nbytes, span, err := s.fetchSubquery(ctx, w.sq, traceID)
					frag = s.cacheFetched(frag, &err)
					results[w.idx] = subResult{frag: frag, downs: downs, bytes: nbytes, span: span, err: err}
					return
				}
				s.Metrics.Coalesced.Inc()
				var span *trace.Span
				if traceID != "" {
					// A marker span with this query's own trace ID; adopting
					// the leader's subtree would mix trace IDs in one tree.
					span = &trace.Span{TraceID: traceID, Site: s.cfg.Name, Query: w.sq.Query, Op: "coalesced"}
				}
				results[w.idx] = subResult{frag: w.fl.res.frag, downs: w.fl.res.downs, bytes: w.fl.res.bytes, span: span}
			case <-ctx.Done():
				err := fmt.Errorf("site %s: awaiting coalesced fetch: %w", s.cfg.Name, ctx.Err())
				results[w.idx] = subResult{err: err, span: errSpan(traceID, s.cfg.Name, w.sq.Query, err)}
			}
		}(w)
	}
	wg.Wait()
	return results, batchSpans
}

// splitByByteCap partitions one destination group into pieces whose encoded
// entry payloads stay under capBytes, preserving order. Every piece holds at
// least one entry, so a single oversized subquery still ships (the transport
// frame limit, not this cap, is the hard bound).
func splitByByteCap(group []pendingSub, capBytes int) [][]pendingSub {
	var pieces [][]pendingSub
	var cur []pendingSub
	size := 0
	for _, p := range group {
		b, err := json.Marshal(BatchEntry{Query: p.sq.Query})
		if err != nil {
			// A BatchEntry is a plain string struct; marshaling cannot fail.
			panic(fmt.Sprintf("site: encoding batch entry: %v", err))
		}
		n := len(b) + 1 // +1 for the JSON array separator
		if len(cur) > 0 && size+n > capBytes {
			pieces = append(pieces, cur)
			cur, size = nil, 0
		}
		cur = append(cur, p)
		size += n
	}
	if len(cur) > 0 {
		pieces = append(pieces, cur)
	}
	return pieces
}

// sendBatch ships one KindBatch message carrying piece's subqueries to
// owner, decodes the per-entry answers into results, and completes any
// flights those entries lead. It returns the remote hop's batch span (nil
// without tracing); per-entry spans ride as its children, so entry results
// carry no span of their own.
func (s *Site) sendBatch(ctx context.Context, owner string, piece []pendingSub, traceID string, results []subResult, finishLeader func(int)) *trace.Span {
	entries := make([]BatchEntry, len(piece))
	for i, p := range piece {
		entries[i] = BatchEntry{Query: p.sq.Query}
	}
	var payload []byte
	s.cpu.Do(func() {
		m := &Message{Kind: KindBatch, TraceID: traceID, Entries: entries}
		m.StampDeadline(ctx)
		payload = m.Encode()
	})
	s.Metrics.Subqueries.Add(int64(len(piece)))
	s.Metrics.SubqueryRPCs.Inc()
	s.Metrics.Batches.Inc()
	s.Metrics.BatchSize.Observe(float64(len(piece)))

	fail := func(err error) *trace.Span {
		for _, p := range piece {
			results[p.idx] = subResult{err: err, span: errSpan(traceID, owner, p.sq.Query, err)}
			finishLeader(p.idx)
		}
		if traceID == "" {
			return nil
		}
		return &trace.Span{TraceID: traceID, Site: owner, Op: "batch", Error: err.Error()}
	}

	respB, err := s.call.Call(ctx, owner, payload)
	if err != nil {
		return fail(fmt.Errorf("site %s: batch to %s: %w", s.cfg.Name, owner, err))
	}
	var resp *Message
	var derr error
	s.cpu.Do(func() {
		resp, derr = DecodeMessage(respB)
	})
	if derr == nil {
		if e := resp.AsError(); e != nil {
			derr = e
		}
	}
	if derr == nil && len(resp.Entries) != len(piece) {
		derr = fmt.Errorf("%d answer entries for %d subqueries", len(resp.Entries), len(piece))
	}
	if derr != nil {
		return fail(fmt.Errorf("site %s: batch answer from %s: %w", s.cfg.Name, owner, derr))
	}

	for i, p := range piece {
		e := resp.Entries[i]
		if e.Status != BatchEntryOK {
			err := fmt.Errorf("site %s: batch entry from %s: %s", s.cfg.Name, owner, e.Error)
			results[p.idx] = subResult{err: err}
		} else {
			var frag *xmldb.Node
			var perr error
			s.cpu.Do(func() {
				frag, perr = xmldb.ParseString(e.Fragment)
			})
			if perr != nil {
				perr = fmt.Errorf("site %s: batch entry from %s: %w", s.cfg.Name, owner, perr)
				results[p.idx] = subResult{err: perr}
			} else {
				frag = s.cacheFetched(frag, &perr)
				results[p.idx] = subResult{frag: frag, downs: e.Unreachable, bytes: len(e.Fragment), err: perr}
			}
		}
		finishLeader(p.idx)
	}
	return resp.Span
}

// handleBatch answers a KindBatch message: every entry evaluates through the
// normal query path against one pinned snapshot — a single atomic load, so
// all entries of a batch answer from the same consistent version — and the
// per-entry outcomes return in request order with individual statuses. One
// failed entry does not fail the batch; the sender splices the others and
// marks only the failed target unreachable, exactly as an individual
// subquery failure would.
func (s *Site) handleBatch(ctx context.Context, msg *Message, reqBytes int) *Message {
	t0 := time.Now()
	if len(msg.Entries) == 0 {
		return errorMessage(fmt.Errorf("site %s: empty batch", s.cfg.Name))
	}
	snap := s.state.Load().store
	out := make([]BatchEntry, len(msg.Entries))
	var wg sync.WaitGroup
	for i, e := range msg.Entries {
		wg.Add(1)
		go func(i int, kind, query string) {
			defer wg.Done()
			if kind == KindAggregate {
				em := &Message{Kind: KindAggregate, Query: query, TraceID: msg.TraceID}
				resp := s.handleAggregate(ctx, em, len(query), snap)
				if err := resp.AsError(); err != nil {
					out[i] = BatchEntry{Kind: kind, Query: query, Status: BatchEntryError, Error: err.Error(),
						Span: errSpan(msg.TraceID, s.cfg.Name, query, err)}
					return
				}
				out[i] = BatchEntry{Kind: kind, Query: query, Status: BatchEntryOK, Agg: resp.Agg,
					Unreachable: resp.Unreachable, Truncated: resp.Truncated, Span: resp.Span}
				return
			}
			em := &Message{Kind: KindQuery, Query: query, TraceID: msg.TraceID}
			resp := s.handleQuery(ctx, em, len(query), snap)
			if err := resp.AsError(); err != nil {
				out[i] = BatchEntry{Query: query, Status: BatchEntryError, Error: err.Error(),
					Span: errSpan(msg.TraceID, s.cfg.Name, query, err)}
				return
			}
			out[i] = BatchEntry{Query: query, Status: BatchEntryOK, Fragment: resp.Fragment,
				Unreachable: resp.Unreachable, Span: resp.Span}
		}(i, e.Kind, e.Query)
	}
	wg.Wait()
	res := &Message{Kind: KindBatchResult, Entries: out}
	if msg.TraceID != "" {
		span := &trace.Span{TraceID: msg.TraceID, Site: s.cfg.Name, Op: "batch",
			BytesIn: reqBytes, Subqueries: len(msg.Entries)}
		for i := range out {
			if out[i].Span != nil {
				span.Children = append(span.Children, out[i].Span)
				out[i].Span = nil
			}
		}
		span.DurationUS = time.Since(t0).Microseconds()
		res.Span = span
	}
	return res
}
