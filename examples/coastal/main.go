// Coastal monitoring — the Oregon-coastline deployment sketched in the
// paper's introduction: the same engine serving a completely different
// schema (regions, stations, instruments) without any code changes,
// demonstrating that IrisNet is a general platform for wide area sensor
// services, not a parking application.
//
// Oceanographers monitor rip tides and sandbar formation; each shore
// station's data is owned by the site nearest to it, and region-wide
// questions gather across stations.
//
// Run with: go run ./examples/coastal
package main

import (
	"fmt"
	"log"

	"irisnet"
)

const coastDoc = `
<coastline id="oregon">
  <region id="north">
    <station id="cannon-beach" lat="45.89">
      <waveheight>2.1</waveheight>
      <ripCurrentRisk>low</ripCurrentRisk>
      <instrument id="cam1"><type>webcam</type><status>ok</status></instrument>
      <instrument id="gauge1"><type>pressure</type><status>ok</status></instrument>
    </station>
    <station id="seaside" lat="45.99">
      <waveheight>2.8</waveheight>
      <ripCurrentRisk>moderate</ripCurrentRisk>
      <instrument id="cam1"><type>webcam</type><status>degraded</status></instrument>
    </station>
  </region>
  <region id="central">
    <station id="newport" lat="44.63">
      <waveheight>3.4</waveheight>
      <ripCurrentRisk>high</ripCurrentRisk>
      <instrument id="adcp1"><type>current-profiler</type><status>ok</status></instrument>
    </station>
    <station id="florence" lat="43.98">
      <waveheight>1.9</waveheight>
      <ripCurrentRisk>low</ripCurrentRisk>
      <instrument id="cam1"><type>webcam</type><status>ok</status></instrument>
    </station>
  </region>
</coastline>`

func main() {
	dep, err := irisnet.New(irisnet.Config{
		ServiceName: "coast.intel-iris.net",
		DocumentXML: coastDoc,
		RootOwner:   "hq-corvallis",
		Ownership: map[string]string{
			"/coastline[@id='oregon']/region[@id='north']":   "site-astoria",
			"/coastline[@id='oregon']/region[@id='central']": "site-newport",
		},
		Caching: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// A beach-safety service asks for every station with elevated rip
	// current risk along the whole coastline.
	fmt.Println("stations with elevated rip-current risk:")
	q := "/coastline[@id='oregon']/region/station[ripCurrentRisk='high' or ripCurrentRisk='moderate']"
	nodes, err := dep.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range nodes {
		fmt.Printf("  %-14s waves=%sm risk=%s\n", n.ID(),
			text(n, "waveheight"), text(n, "ripCurrentRisk"))
	}

	// Sandbar researchers watch one region's wave heights; the query
	// self-starts at the owning site.
	entry, _ := dep.RouteOf("/coastline[@id='oregon']/region[@id='central']/station")
	fmt.Printf("\ncentral-region queries route to %s\n", entry)

	// A storm rolls in: the Newport sensor proxy reports new readings.
	newport := "/coastline[@id='oregon']/region[@id='central']/station[@id='newport']"
	if err := dep.Update(newport, map[string]string{
		"waveheight": "5.2", "ripCurrentRisk": "extreme",
	}, nil); err != nil {
		log.Fatal(err)
	}
	nodes, err = dep.Query(newport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter storm update: newport waves=%sm risk=%s\n",
		text(nodes[0], "waveheight"), text(nodes[0], "ripCurrentRisk"))

	// Maintenance: which instruments are not healthy, coast-wide?
	fmt.Println("\ndegraded instruments:")
	nodes, err = dep.Query("/coastline[@id='oregon']/region/station/instrument[status!='ok']")
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range nodes {
		fmt.Printf("  %s (%s)\n", n.ID(), text(n, "type"))
	}

	// Aggregation with XPath functions: stations with waves above 3m.
	nodes, err = dep.Query("/coastline[@id='oregon']/region/station[waveheight > 3]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d station(s) with waves above 3m\n", len(nodes))
}

func text(n *irisnet.Node, child string) string {
	if c := n.ChildNamed(child); c != nil {
		return c.Text
	}
	return "?"
}
