// Parking Space Finder — the paper's motivating application (Section 1).
//
// A driver heads to a destination near the Oakland/Shadyside boundary. The
// service fires queries on her behalf: far from the destination it
// tolerates minutes-old data (served from caches); as she approaches, it
// insists on fresh data (forcing re-fetches from the owning sites). When
// her chosen space is taken, the directions re-route to a new space.
//
// Run with: go run ./examples/parkingfinder
package main

import (
	"fmt"
	"log"
	"strings"

	"irisnet"
)

const pgh = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']/city[@id='Pittsburgh']"

func main() {
	// Simulated clock, in seconds: the demo scripts time explicitly.
	now := 0.0
	clock := func() float64 { return now }

	dep, err := irisnet.New(irisnet.Config{
		ServiceName: "parking.intel-iris.net",
		DocumentXML: buildCity(),
		RootOwner:   "city-site",
		Ownership: map[string]string{
			pgh + "/neighborhood[@id='Oakland']":   "oakland-site",
			pgh + "/neighborhood[@id='Shadyside']": "shadyside-site",
		},
		Caching: true,
		Clock:   clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Sensors report at t=0: all spaces stamped.
	for _, nb := range []string{"Oakland", "Shadyside"} {
		for blk := 1; blk <= 2; blk++ {
			for sp := 1; sp <= 3; sp++ {
				path := fmt.Sprintf("%s/neighborhood[@id='%s']/block[@id='%d']/parkingSpace[@id='%d']",
					pgh, nb, blk, sp)
				avail := "no"
				if sp != 2 {
					avail = "yes"
				}
				if err := dep.Update(path, map[string]string{"available": avail}, nil); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// The driver's criteria: within the two blocks nearest her destination
	// (Oakland block 2 or Shadyside block 1), at least a 2-hour meter. The
	// tolerance predicate controls how stale an answer may be.
	blocks := []struct{ nb, blk string }{{"Oakland", "2"}, {"Shadyside", "1"}}
	criteria := func(nb, blk, tolerance string) string {
		return fmt.Sprintf("%s/neighborhood[@id='%s']/block[@id='%s']/parkingSpace[available='yes'][meter!='1hr']%s",
			pgh, nb, blk, tolerance)
	}
	find := func(tolerance string) []string {
		var out []string
		for _, b := range blocks {
			nodes, err := dep.Query(criteria(b.nb, b.blk, tolerance))
			if err != nil {
				log.Fatal(err)
			}
			for _, n := range nodes {
				lbl := fmt.Sprintf("%s/block-%s/space-%s", b.nb, b.blk, n.ID())
				fmt.Printf("   candidate: %s\n", lbl)
				out = append(out, lbl)
			}
		}
		if len(out) == 0 {
			log.Fatal("no spaces match the driver's criteria")
		}
		return out
	}

	fmt.Println("== several miles out (t=120s): minutes-old data is fine ==")
	now = 120
	spaces := find("[@ts >= now() - 600]")
	target := spaces[0]
	fmt.Printf("-> directing driver to %s\n", target)

	fmt.Println("\n== meanwhile, the space is taken ==")
	if err := dep.Update(pathOf(target), map[string]string{"available": "no"}, nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== two blocks away (t=150s): insist on data fresher than 30s ==")
	now = 150
	fresh := find("[@ts >= now() - 30]")
	for _, s := range fresh {
		if s == target {
			log.Fatalf("stale answer: %s is taken", s)
		}
	}
	fmt.Printf("-> re-routing driver to %s\n", fresh[0])
}

// pathOf maps a label back to the space's ID path (demo bookkeeping).
func pathOf(lbl string) string {
	var nb, blk, sp string
	parts := strings.Split(lbl, "/")
	nb = parts[0]
	blk = strings.TrimPrefix(parts[1], "block-")
	sp = strings.TrimPrefix(parts[2], "space-")
	return fmt.Sprintf("%s/neighborhood[@id='%s']/block[@id='%s']/parkingSpace[@id='%s']", pgh, nb, blk, sp)
}

// buildCity generates the demo document: 2 neighborhoods x 2 blocks x 3
// spaces with meter limits.
func buildCity() string {
	var sb strings.Builder
	sb.WriteString(`<usRegion id="NE"><state id="PA"><county id="Allegheny"><city id="Pittsburgh">`)
	meters := []string{"1hr", "2hr", "4hr"}
	for _, nb := range []string{"Oakland", "Shadyside"} {
		fmt.Fprintf(&sb, `<neighborhood id="%s">`, nb)
		for blk := 1; blk <= 2; blk++ {
			fmt.Fprintf(&sb, `<block id="%d">`, blk)
			for sp := 1; sp <= 3; sp++ {
				fmt.Fprintf(&sb, `<parkingSpace id="%d"><available>no</available><meter>%s</meter></parkingSpace>`,
					sp, meters[sp-1])
			}
			sb.WriteString(`</block>`)
		}
		sb.WriteString(`</neighborhood>`)
	}
	sb.WriteString(`</city></county></state></usRegion>`)
	return sb.String()
}
