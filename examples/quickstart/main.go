// Quickstart: build an embedded three-site IrisNet deployment for the
// paper's Parking Space Finder document, pose XPath queries against the
// single logical document, and watch them route, gather and answer.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"irisnet"
)

const document = `
<usRegion id="NE">
  <state id="PA">
    <county id="Allegheny">
      <city id="Pittsburgh">
        <neighborhood id="Oakland" zipcode="15213">
          <block id="1">
            <parkingSpace id="1"><available>yes</available><price>25</price></parkingSpace>
            <parkingSpace id="2"><available>no</available><price>0</price></parkingSpace>
          </block>
          <block id="2">
            <parkingSpace id="1"><available>yes</available><price>50</price></parkingSpace>
          </block>
        </neighborhood>
        <neighborhood id="Shadyside" zipcode="15232">
          <block id="1">
            <parkingSpace id="1"><available>yes</available><price>25</price></parkingSpace>
          </block>
        </neighborhood>
      </city>
    </county>
  </state>
</usRegion>`

const pgh = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']/city[@id='Pittsburgh']"

func main() {
	// The logical document is one XML tree; physically, each neighborhood
	// lives on its own site and the upper hierarchy on a third.
	dep, err := irisnet.New(irisnet.Config{
		ServiceName: "parking.intel-iris.net",
		DocumentXML: document,
		RootOwner:   "city-site",
		Ownership: map[string]string{
			pgh + "/neighborhood[@id='Oakland']":   "oakland-site",
			pgh + "/neighborhood[@id='Shadyside']": "shadyside-site",
		},
		Caching: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	fmt.Println("sites:", dep.Sites())

	// Queries are routed by their text alone: the LCA's DNS-style name is
	// extracted from the leading /name[@id=...] steps.
	q := pgh + "/neighborhood[@id='Oakland']/block[@id='1']/parkingSpace[available='yes']"
	entry, _ := dep.RouteOf(q)
	fmt.Printf("\nquery routes to %s (self-starting, no global state)\n", entry)
	show(dep, q)

	// The paper's Figure 2 query: an OR over two neighborhoods. The LCA is
	// the city; the city site gathers from both neighborhood sites.
	show(dep, pgh+"/neighborhood[@id='Oakland' OR @id='Shadyside']/block[@id='1']/parkingSpace[available='yes']")

	// A sensor update flips space 2; queries see it immediately.
	space2 := pgh + "/neighborhood[@id='Oakland']/block[@id='1']/parkingSpace[@id='2']"
	if err := dep.Update(space2, map[string]string{"available": "yes"}, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter update (space 2 becomes available):")
	show(dep, q)

	// The least pricey spot in Oakland block 1 — a nesting-depth-1 query
	// (XPath 1.0 has no min()); the engine gathers the block subtree first.
	show(dep, pgh+"/neighborhood[@id='Oakland']/block[@id='1']/parkingSpace[not(price > ../parkingSpace/price)]")

	// The second identical query is served from the city site's cache.
	dep.Query(q)
	stats, _ := dep.Stats("city-site")
	fmt.Printf("\ncity-site stats: %+v\n", stats)
}

func show(dep *irisnet.Deployment, q string) {
	fmt.Printf("\nQ: %s\n", q)
	answers, err := dep.QueryXML(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		fmt.Println("  ", a)
	}
	if len(answers) == 0 {
		fmt.Println("   (no results)")
	}
}
