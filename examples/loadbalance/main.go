// Load balancing — the Figure 9 scenario as an application: during
// business hours 90% of queries hit the Downtown neighborhood, overloading
// its site. An operator (or an automated policy) delegates Downtown's
// blocks one at a time to the other sites; the system keeps answering
// queries throughout, and throughput recovers.
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"irisnet/internal/cluster"
	"irisnet/internal/workload"
)

func main() {
	cfg := cluster.PaperCalibration(cluster.Config{
		DB: workload.DBConfig{Cities: 2, Neighborhoods: 3, Blocks: 12, Spaces: 8, Seed: 4},
	})
	c, err := cluster.New(cluster.Hierarchical, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	hotSite := c.Sites[cluster.NBSiteName(0, 0)]
	fmt.Printf("deployment: %d sites; hot neighborhood owned by %s\n",
		len(c.Sites), hotSite.Name())

	// Skewed business-hours load: 90% of type-1 queries target the hot
	// neighborhood.
	var stop atomic.Bool
	var completed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fe := c.NewFrontend()
			gen := workload.NewGen(c.DB, workload.QW1, int64(id+1))
			gen.Skew(0, 0, 90)
			for !stop.Load() {
				q, _ := gen.Next()
				if _, err := fe.Query(q); err == nil {
					completed.Add(1)
				}
			}
		}(i)
	}

	measure := func(label string, d time.Duration) float64 {
		before := completed.Load()
		time.Sleep(d)
		rate := float64(completed.Load()-before) / d.Seconds()
		fmt.Printf("%-28s %8.1f queries/sec\n", label, rate)
		return rate
	}

	overloaded := measure("overloaded (one hot site):", 1500*time.Millisecond)

	// Delegate the hot blocks round-robin across every other site, one at
	// a time, while queries keep flowing (the transfer is atomic per
	// block; old owners forward, DNS entries are re-pointed).
	var targets []string
	for _, s := range c.Assign.Sites() {
		if s != hotSite.Name() {
			targets = append(targets, s)
		}
	}
	fmt.Println("delegating hot blocks across the cluster...")
	for b := 0; b < c.DB.Cfg.Blocks; b++ {
		if err := hotSite.Delegate(c.DB.BlockPath(0, 0, b), targets[b%len(targets)]); err != nil {
			log.Fatal(err)
		}
		time.Sleep(40 * time.Millisecond)
	}
	moved := 0
	for b := 0; b < c.DB.Cfg.Blocks; b++ {
		if !hotSite.Owns(c.DB.BlockPath(0, 0, b)) {
			moved++
		}
	}
	fmt.Printf("moved %d/%d blocks\n", moved, c.DB.Cfg.Blocks)

	balanced := measure("balanced (after migration):", 1500*time.Millisecond)
	fmt.Printf("\nthroughput recovered by x%.1f — queries were answered throughout\n",
		balanced/overloaded)

	stop.Store(true)
	wg.Wait()
}
