# Mirrors .github/workflows/ci.yml — `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: ci build fmt vet lint test race-stress bench-smoke metrics-smoke cache-smoke localeval-smoke aggregate-smoke replication-smoke durability-smoke perf-gate

ci: build fmt lint test race-stress bench-smoke metrics-smoke cache-smoke localeval-smoke aggregate-smoke replication-smoke durability-smoke perf-gate

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# CI pins staticcheck@2024.1.1; locally the step is skipped (with a note)
# when the binary is not on PATH, so offline checkouts still pass.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI runs it pinned at 2024.1.1)"; \
	fi

# -shuffle=on catches inter-test ordering dependencies; the coverage
# summary prints the total statement coverage CI records.
test:
	$(GO) test -race -shuffle=on -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Re-runs the concurrency stress tests under the race detector with more
# repetitions than the plain test step, to shake out rare interleavings in
# the lock-free query path (snapshots, plan cache, migration handoffs).
race-stress:
	$(GO) test -race -count=3 -run 'Concurrent|Snapshot|COW' ./internal/site ./internal/qeg ./internal/fragment

# Micro-benchmarks one iteration each, plus the batching experiment in
# smoke mode: short arms, but the acceptance comparisons (RPC reduction,
# coalescing, single-subquery parity) are still computed and printed.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/irisbench -exp batching -short

# Boots a real irisnetd on the demo topology and curls its observability
# endpoint: /healthz must answer ok, /metrics must expose the query series.
metrics-smoke:
	./scripts/metrics_smoke.sh

# Bounded-cache experiment in smoke mode: short arms, but the acceptance
# checks (cache bytes never exceed budget + one unit; hit rate degrades
# gracefully as the budget shrinks) are still computed and enforced.
cache-smoke:
	./scripts/cache_smoke.sh

# Cache-conscious index experiment in smoke mode: enforces >=5x speedup
# over the tree walker on the gated descendant arms, an allocation-free
# selection core, and byte-identical answers from both evaluation paths.
localeval-smoke:
	./scripts/localeval_smoke.sh

# Aggregate-pushdown experiment in smoke mode: short arms, but the
# acceptance comparisons (>=10x fewer bytes per query and >=2x better p50
# than the raw-gather baseline) are still computed and enforced.
aggregate-smoke:
	./scripts/aggregate_smoke.sh

# Replication experiment in smoke mode: short arms, but the acceptance
# checks (>=2.5x aggregate QPS with 3 read replicas, strict/tolerant
# byte-identity, lossless mid-load failover) are still computed and
# enforced.
replication-smoke:
	./scripts/replication_smoke.sh

# Durability experiment in smoke mode (zero lost acked updates,
# byte-identical recovery, warm cache beating a cold rejoin), then a real
# irisnetd kill -9 on the demo topology: restart on the same -data-dir must
# set the recovery metrics, rehydrate the cache before any query, and serve
# a byte-equal answer.
durability-smoke:
	./scripts/durability_smoke.sh

# Benchmarks HEAD against its merge base and fails on a >15% median ns/op
# regression in the tier-1 benchmarks (BenchmarkSnapshotQuery,
# BenchmarkSerialize; BenchmarkAggregateCompute is watched once both sides
# have it). benchstat renders the comparison when installed; cmd/benchgate
# decides the verdict either way.
perf-gate:
	./scripts/perf_gate.sh
