# Mirrors .github/workflows/ci.yml — `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: ci build fmt vet test bench-smoke metrics-smoke

ci: build fmt vet test bench-smoke metrics-smoke

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Boots a real irisnetd on the demo topology and curls its observability
# endpoint: /healthz must answer ok, /metrics must expose the query series.
metrics-smoke:
	./scripts/metrics_smoke.sh
