# Mirrors .github/workflows/ci.yml — `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: ci build fmt vet test race-stress bench-smoke metrics-smoke cache-smoke

ci: build fmt vet test race-stress bench-smoke metrics-smoke cache-smoke

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Re-runs the concurrency stress tests under the race detector with more
# repetitions than the plain test step, to shake out rare interleavings in
# the lock-free query path (snapshots, plan cache, migration handoffs).
race-stress:
	$(GO) test -race -count=3 -run 'Concurrent|Snapshot|COW' ./internal/site ./internal/qeg ./internal/fragment

# Micro-benchmarks one iteration each, plus the batching experiment in
# smoke mode: short arms, but the acceptance comparisons (RPC reduction,
# coalescing, single-subquery parity) are still computed and printed.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/irisbench -exp batching -short

# Boots a real irisnetd on the demo topology and curls its observability
# endpoint: /healthz must answer ok, /metrics must expose the query series.
metrics-smoke:
	./scripts/metrics_smoke.sh

# Bounded-cache experiment in smoke mode: short arms, but the acceptance
# checks (cache bytes never exceed budget + one unit; hit rate degrades
# gracefully as the budget shrinks) are still computed and enforced.
cache-smoke:
	./scripts/cache_smoke.sh
