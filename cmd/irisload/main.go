// Command irisload drives sensing-agent updates against a running TCP
// deployment: it walks the deployment's document for update targets
// (elements matching -target, default parkingSpace) and streams synthetic
// availability readings at the requested rate.
//
// Usage:
//
//	irisload -topology topo.json -rate 100 -dur 30s
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"irisnet/internal/deploy"
	"irisnet/internal/xmldb"
)

var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		topoPath = flag.String("topology", "", "path to the JSON topology file (required)")
		rate     = flag.Float64("rate", 50, "aggregate updates per second")
		dur      = flag.Duration("dur", 10*time.Second, "how long to run")
		target   = flag.String("target", "parkingSpace", "element name to update")
		field    = flag.String("field", "available", "child element set by each update")
	)
	flag.Parse()
	if *topoPath == "" {
		fmt.Fprintln(os.Stderr, "usage: irisload -topology topo.json [-rate N] [-dur D]")
		os.Exit(2)
	}
	topo, err := deploy.LoadTopology(*topoPath)
	fatal(err)
	doc, err := topo.LoadDocument()
	fatal(err)

	var targets []xmldb.IDPath
	doc.Walk(func(n *xmldb.Node) bool {
		if n.Name == *target {
			if p, ok := xmldb.IDPathOf(n); ok {
				targets = append(targets, p)
			}
		}
		return true
	})
	if len(targets) == 0 {
		fatal(fmt.Errorf("no <%s> elements with ID paths in the document", *target))
	}
	logger.Info("starting load", "targets", len(targets), "rate", *rate, "dur", *dur)

	fe := deploy.NewFrontend(topo)
	interval := time.Duration(float64(time.Second) / *rate)
	deadline := time.Now().Add(*dur)
	sent, failed := 0, 0
	i := 0
	vals := []string{"yes", "no"}
	for time.Now().Before(deadline) {
		t := targets[i%len(targets)]
		err := fe.Update(t, map[string]string{*field: vals[i%2]}, nil)
		if err != nil {
			failed++
			if failed <= 3 {
				logger.Warn("update failed", "target", t.String(), "err", err)
			}
		} else {
			sent++
		}
		i++
		time.Sleep(interval)
	}
	logger.Info("load complete", "sent", sent, "failed", failed)
}

func fatal(err error) {
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}
