// Command irisquery poses an XPath query against a running TCP deployment
// and prints the answer subtrees.
//
// Usage:
//
//	irisquery -topology topo.json "/usRegion[@id='NE']/.../parkingSpace[available='yes']"
//	irisquery -topology topo.json -route "/usRegion[@id='NE']/..."   # show routing only
//	irisquery -topology topo.json -trace "/usRegion[@id='NE']/..."   # EXPLAIN-style trace tree
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"irisnet/internal/deploy"
	"irisnet/internal/service"
	"irisnet/internal/trace"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "path to the JSON topology file (required)")
		routeOnly = flag.Bool("route", false, "print the entry site instead of running the query")
		rawFlag   = flag.Bool("raw", false, "print the raw assembled answer fragment (with status tags)")
		traceFlag = flag.Bool("trace", false, "run the query with distributed tracing and print the trace tree")
	)
	flag.Parse()
	if *topoPath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: irisquery -topology topo.json [-route] [-raw] [-trace] <xpath-query>")
		os.Exit(2)
	}
	query := flag.Arg(0)
	topo, err := deploy.LoadTopology(*topoPath)
	fatal(err)
	fe := deploy.NewFrontend(topo)

	if *routeOnly {
		entry, lca, err := fe.RouteOf(query)
		fatal(err)
		fmt.Printf("LCA:   %s\n", lca)
		fmt.Printf("entry: %s\n", entry)
		return
	}
	if *rawFlag {
		frag, err := fe.QueryFragment(query)
		fatal(err)
		fmt.Println(frag.Indented())
		return
	}
	if *traceFlag {
		ans, span, err := fe.QueryTrace(context.Background(), query)
		fatal(err)
		if span != nil {
			fmt.Println(trace.Render(span))
			if fr := trace.AggregateFreshness(span); fr != nil {
				if s := fr.Summary(); s != "" {
					fmt.Printf("freshness: %s\n", s)
				}
			}
		}
		fmt.Printf("<!-- %d result(s) -->\n", len(ans.Nodes))
		for _, n := range ans.Nodes {
			fmt.Println(n.Indented())
		}
		reportPartial(ans)
		return
	}
	ans, err := fe.QueryFull(context.Background(), query)
	fatal(err)
	fmt.Printf("<!-- %d result(s) -->\n", len(ans.Nodes))
	for _, n := range ans.Nodes {
		fmt.Println(n.Indented())
	}
	reportPartial(ans)
}

func reportPartial(ans *service.Answer) {
	if !ans.Partial() {
		return
	}
	fmt.Fprintln(os.Stderr, "irisquery: PARTIAL ANSWER — unreachable subtrees:")
	for _, p := range ans.Unreachable {
		fmt.Fprintln(os.Stderr, "  ", p)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisquery:", err)
		os.Exit(1)
	}
}
