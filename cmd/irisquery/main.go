// Command irisquery poses an XPath query against a running TCP deployment
// and prints the answer subtrees. Aggregate queries — count/sum/avg/min/max
// over a location path — are detected from the query text and answered via
// in-network partial aggregation, printing the single value instead of
// subtrees.
//
// Usage:
//
//	irisquery -topology topo.json "/usRegion[@id='NE']/.../parkingSpace[available='yes']"
//	irisquery -topology topo.json "count(/usRegion[@id='NE']/.../parkingSpace)"
//	irisquery -topology topo.json -route "/usRegion[@id='NE']/..."   # show routing only
//	irisquery -topology topo.json -trace "/usRegion[@id='NE']/..."   # EXPLAIN-style trace tree
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"irisnet/internal/deploy"
	"irisnet/internal/service"
	"irisnet/internal/trace"
	"irisnet/internal/xpath"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "path to the JSON topology file (required)")
		routeOnly = flag.Bool("route", false, "print the entry site instead of running the query")
		rawFlag   = flag.Bool("raw", false, "print the raw assembled answer fragment (with status tags)")
		traceFlag = flag.Bool("trace", false, "run the query with distributed tracing and print the trace tree")
	)
	flag.Parse()
	if *topoPath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: irisquery -topology topo.json [-route] [-raw] [-trace] <xpath-query>")
		os.Exit(2)
	}
	query := flag.Arg(0)
	topo, err := deploy.LoadTopology(*topoPath)
	fatal(err)
	fe := deploy.NewFrontend(topo)

	aggQ, isAgg, err := xpath.ParseAggregate(query)
	fatal(err)

	if *routeOnly {
		routed := query
		if isAgg {
			// Aggregates route by their inner path's LCA.
			routed = aggQ.InnerSource()
		}
		entry, lca, err := fe.RouteOf(routed)
		fatal(err)
		fmt.Printf("LCA:   %s\n", lca)
		fmt.Printf("entry: %s\n", entry)
		return
	}
	if isAgg {
		runAggregate(fe, query, *traceFlag)
		return
	}
	if *rawFlag {
		frag, err := fe.QueryFragment(query)
		fatal(err)
		fmt.Println(frag.Indented())
		return
	}
	if *traceFlag {
		ans, span, err := fe.QueryTrace(context.Background(), query)
		fatal(err)
		if span != nil {
			fmt.Println(trace.Render(span))
			if fr := trace.AggregateFreshness(span); fr != nil {
				if s := fr.Summary(); s != "" {
					fmt.Printf("freshness: %s\n", s)
				}
			}
		}
		fmt.Printf("<!-- %d result(s) -->\n", len(ans.Nodes))
		for _, n := range ans.Nodes {
			fmt.Println(n.Indented())
		}
		reportPartial(ans)
		return
	}
	ans, err := fe.QueryFull(context.Background(), query)
	fatal(err)
	fmt.Printf("<!-- %d result(s) -->\n", len(ans.Nodes))
	for _, n := range ans.Nodes {
		fmt.Println(n.Indented())
	}
	reportPartial(ans)
}

// runAggregate answers an aggregate-shaped query via in-network partial
// aggregation and prints the value plus any partial-answer markers.
func runAggregate(fe *service.Frontend, query string, traced bool) {
	var (
		ans  *service.AggregateAnswer
		span *trace.Span
		err  error
	)
	if traced {
		ans, span, err = fe.QueryAggregateTrace(context.Background(), query)
	} else {
		ans, err = fe.QueryAggregate(query)
	}
	fatal(err)
	if span != nil {
		fmt.Println(trace.Render(span))
		if fr := trace.AggregateFreshness(span); fr != nil {
			if s := fr.Summary(); s != "" {
				fmt.Printf("freshness: %s\n", s)
			}
		}
	}
	if ans.Defined {
		fmt.Printf("%s = %v\n", ans.Fn, ans.Value)
	} else {
		fmt.Printf("%s is undefined (empty match set)\n", ans.Fn)
	}
	if ans.AgeMaxSec > 0 {
		fmt.Printf("<!-- max cached age %.1fs over contributing partials -->\n", ans.AgeMaxSec)
	}
	if ans.Truncated {
		fmt.Fprintln(os.Stderr, "irisquery: TRUNCATED — the gather loop hit its round bound before converging")
	}
	if len(ans.Unreachable) > 0 {
		fmt.Fprintln(os.Stderr, "irisquery: PARTIAL ANSWER — the aggregate is a lower bound; unreachable subtrees:")
		for _, p := range ans.Unreachable {
			fmt.Fprintln(os.Stderr, "  ", p)
		}
	}
}

func reportPartial(ans *service.Answer) {
	if !ans.Partial() {
		return
	}
	if ans.Truncated {
		fmt.Fprintln(os.Stderr, "irisquery: TRUNCATED — the gather loop hit its round bound before converging")
	}
	if len(ans.Unreachable) > 0 {
		fmt.Fprintln(os.Stderr, "irisquery: PARTIAL ANSWER — unreachable subtrees:")
		for _, p := range ans.Unreachable {
			fmt.Fprintln(os.Stderr, "  ", p)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisquery:", err)
		os.Exit(1)
	}
}
