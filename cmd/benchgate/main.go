// Command benchgate compares two `go test -bench` outputs and fails when
// any benchmark's median ns/op regressed past a threshold. It is the
// machine-checked verdict behind the CI perf gate: benchstat (when
// installed) renders the human-readable comparison, benchgate decides
// pass/fail with no dependencies outside the standard library, so the
// gate also runs in offline checkouts via `make perf-gate`.
//
// Usage:
//
//	benchgate -old base.txt -new head.txt -threshold 15 \
//	          -require BenchmarkSnapshotQuery,BenchmarkSerialize
//
// Benchmarks present in only one file are reported but do not gate;
// -require names benchmark prefixes that must have samples in both files
// (a rename silently dropping a gated benchmark fails loudly).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

var (
	oldFlag       = flag.String("old", "", "baseline `go test -bench` output")
	newFlag       = flag.String("new", "", "candidate `go test -bench` output")
	thresholdFlag = flag.Float64("threshold", 15, "max allowed median ns/op regression, percent")
	requireFlag   = flag.String("require", "", "comma-separated benchmark name prefixes that must appear in both files")
)

func main() {
	flag.Parse()
	if *oldFlag == "" || *newFlag == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	oldNs, err := parseBench(*oldFlag)
	fatal(err)
	newNs, err := parseBench(*newFlag)
	fatal(err)

	names := make([]string, 0, len(oldNs))
	for name := range oldNs {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-52s %14s %14s %9s\n", "benchmark", "old-ns/op", "new-ns/op", "delta")
	failed := false
	for _, name := range names {
		old := median(oldNs[name])
		cur, ok := newNs[name]
		if !ok {
			fmt.Printf("%-52s %14.0f %14s %9s\n", name, old, "-", "gone")
			continue
		}
		nw := median(cur)
		delta := 100 * (nw - old) / old
		verdict := ""
		if delta > *thresholdFlag {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-52s %14.0f %14.0f %+8.1f%%%s\n", name, old, nw, delta, verdict)
	}
	for name := range newNs {
		if _, ok := oldNs[name]; !ok {
			fmt.Printf("%-52s %14s %14.0f %9s\n", name, "-", median(newNs[name]), "new")
		}
	}

	if *requireFlag != "" {
		for _, prefix := range strings.Split(*requireFlag, ",") {
			prefix = strings.TrimSpace(prefix)
			if prefix == "" {
				continue
			}
			if !hasPrefix(oldNs, prefix) || !hasPrefix(newNs, prefix) {
				fmt.Fprintf(os.Stderr, "benchgate: required benchmark %q missing from a side\n", prefix)
				failed = true
			}
		}
	}

	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL (threshold %.0f%% on median ns/op)\n", *thresholdFlag)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (no median ns/op regression above %.0f%%)\n", *thresholdFlag)
}

func hasPrefix(m map[string][]float64, prefix string) bool {
	for name := range m {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// parseBench extracts ns/op samples per benchmark from `go test -bench`
// output. The trailing -N GOMAXPROCS suffix is folded away so `-count`
// repetitions aggregate under one name.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			name := fields[0]
			if j := strings.LastIndex(name, "-"); j > 0 {
				if _, err := strconv.Atoi(name[j+1:]); err == nil {
					name = name[:j]
				}
			}
			out[name] = append(out[name], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
