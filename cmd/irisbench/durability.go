package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"irisnet/internal/cluster"
	"irisnet/internal/service"
	"irisnet/internal/site"
	"irisnet/internal/workload"
	"irisnet/internal/xmldb"
)

// runDurability measures the durable fragment store (BENCH_PR10): a caching
// hierarchical cluster with per-site WAL + checkpoints, where the entry site
// both owns the hot update targets and caches every other site's blocks.
// After a warm phase of acked updates and a steady-state cache-hit
// measurement, the entry site is killed without warning (kill -9 semantics:
// the WAL file descriptor is abandoned mid-stream) and restarted.
//
// Acceptance:
//   - zero lost acked updates: every update acked before the kill is
//     present after recovery;
//   - byte-identical: the recovered store equals the pre-kill snapshot
//     byte for byte, with the same ownership set;
//   - bounded recovery: restart-to-serving stays under the gate;
//   - warm restart: the post-restart cache hit rate holds >= 80% of the
//     pre-kill steady state, and beats a control arm whose data dir is
//     wiped before restart (cold rejoin).
//
// Results are printed and written to BENCH_PR10.json for machines.

type durabilityArm struct {
	Name          string  `json:"name"`
	UpdatesAcked  int     `json:"updatesAcked"`
	Queries       int     `json:"queries"`
	SteadyHitPct  float64 `json:"steadyHitPct"`
	RecoveryMs    float64 `json:"recoveryMs"`
	Recovered     bool    `json:"recovered"`
	ByteIdentical bool    `json:"byteIdentical"`
	OwnedEqual    bool    `json:"ownedEqual"`
	LostAcked     int     `json:"lostAcked"`
	PostHitPct    float64 `json:"postHitPct"`
}

type durabilityReport struct {
	Experiment      string        `json:"experiment"`
	Short           bool          `json:"short"`
	Updates         int           `json:"updates"`
	RecoveryBoundMs float64       `json:"recoveryBoundMs"`
	Warm            durabilityArm `json:"warm"`
	Cold            durabilityArm `json:"cold"`

	PassNoLoss    bool `json:"passNoLoss"`
	PassIdentical bool `json:"passIdentical"`
	PassRecovery  bool `json:"passRecovery"`
	PassWarmHit   bool `json:"passWarmHit"`
	PassWarmCold  bool `json:"passWarmVsCold"`
	Pass          bool `json:"pass"`
}

const durRecoveryBoundMs = 3000

func runDurability() {
	updates := 300
	rounds := 4
	if *shortFlag {
		updates = 60
	}
	header(fmt.Sprintf("Durable store: kill -9 recovery + warm restart (updates=%d)", updates))

	rep := durabilityReport{
		Experiment:      "durability",
		Short:           *shortFlag,
		Updates:         updates,
		RecoveryBoundMs: durRecoveryBoundMs,
	}

	fmt.Printf("%-6s %8s %8s %10s %10s %7s %7s %6s %10s\n",
		"arm", "acked", "queries", "steady-hit", "recov-ms", "ident", "owned", "lost", "post-hit")
	rep.Warm = durabilityArmRun("warm", updates, rounds, false)
	durabilityPrintArm(rep.Warm)
	rep.Cold = durabilityArmRun("cold", updates, rounds, true)
	durabilityPrintArm(rep.Cold)

	rep.PassNoLoss = rep.Warm.LostAcked == 0 && rep.Warm.UpdatesAcked > 0
	rep.PassIdentical = rep.Warm.ByteIdentical && rep.Warm.OwnedEqual && rep.Warm.Recovered
	rep.PassRecovery = rep.Warm.RecoveryMs <= durRecoveryBoundMs
	rep.PassWarmHit = rep.Warm.PostHitPct >= 0.8*rep.Warm.SteadyHitPct
	rep.PassWarmCold = rep.Warm.PostHitPct > rep.Cold.PostHitPct
	rep.Pass = rep.PassNoLoss && rep.PassIdentical && rep.PassRecovery &&
		rep.PassWarmHit && rep.PassWarmCold

	fmt.Printf("\nacceptance: zero lost acked=%v; byte-identical+owned=%v; "+
		"recovery %.0fms <= %.0fms=%v; warm hit %.1f%% >= 80%% of steady %.1f%%=%v; "+
		"warm %.1f%% > cold %.1f%%=%v\n",
		rep.PassNoLoss, rep.PassIdentical,
		rep.Warm.RecoveryMs, rep.RecoveryBoundMs, rep.PassRecovery,
		rep.Warm.PostHitPct, rep.Warm.SteadyHitPct, rep.PassWarmHit,
		rep.Warm.PostHitPct, rep.Cold.PostHitPct, rep.PassWarmCold)
	fmt.Printf("overall pass=%v\n", rep.Pass)

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile("BENCH_PR10.json", buf, 0o644))
	fmt.Println("wrote BENCH_PR10.json")
}

func durabilityPrintArm(a durabilityArm) {
	fmt.Printf("%-6s %8d %8d %9.1f%% %10.1f %7v %7v %6d %9.1f%%\n",
		a.Name, a.UpdatesAcked, a.Queries, a.SteadyHitPct, a.RecoveryMs,
		a.ByteIdentical, a.OwnedEqual, a.LostAcked, a.PostHitPct)
}

// durabilityArmRun builds a fresh durable cluster, loads it, kills the
// entry/owner site and restarts it — with its data dir intact (warm) or
// wiped first (cold control).
func durabilityArmRun(name string, updates, rounds int, wipe bool) durabilityArm {
	arm := durabilityArm{Name: name}
	dataDir, err := os.MkdirTemp("", "irisbench-durability-*")
	fatal(err)
	defer os.RemoveAll(dataDir)

	target := cluster.NBSiteName(0, 0)
	cfg := cluster.Config{
		DB:                 workload.DBConfig{Cities: 2, Neighborhoods: 2, Blocks: 4, Spaces: 4, Seed: 13},
		Caching:            true,
		CacheBudgetBytes:   256 << 10,
		DataDir:            dataDir,
		CheckpointInterval: 200 * time.Millisecond,
		// Every query enters at the site that will be killed, so its cache
		// is both the hottest and the one whose warmth the restart must
		// preserve.
		ForceEntry: target,
	}
	c, err := cluster.New(cluster.Hierarchical, cfg)
	fatal(err)
	defer c.Close()
	fe := c.NewFrontend()

	// Hot update targets: the spaces the entry site owns.
	nbPrefix := c.DB.NeighborhoodPath(0, 0).Key() + "/"
	var hot []xmldb.IDPath
	for _, p := range c.DB.SpacePaths {
		if strings.HasPrefix(p.Key(), nbPrefix) {
			hot = append(hot, p)
		}
	}
	// Query set: blocks the entry site does NOT own, so answering them
	// locally means the cache did its job.
	var queries []string
	for city := 0; city < c.DB.Cfg.Cities; city++ {
		for nb := 0; nb < c.DB.Cfg.Neighborhoods; nb++ {
			if city == 0 && nb == 0 {
				continue
			}
			for b := 0; b < c.DB.Cfg.Blocks; b++ {
				queries = append(queries, c.DB.BlockQuery(city, nb, b))
			}
		}
	}

	// Warm phase: acked updates against the owned spaces, interleaved with
	// cache-warming queries; every ack is recorded for the loss check.
	acked := map[string]string{}
	for i := 0; i < updates; i++ {
		p := hot[i%len(hot)]
		v := fmt.Sprintf("upd-%d", i)
		if err := fe.Update(p, map[string]string{"available": v}, nil); err == nil {
			acked[p.String()] = v
		}
		if i%10 == 0 {
			q := queries[(i/10)%len(queries)]
			if _, err := fe.Query(q); err == nil {
				arm.Queries++
			}
		}
	}
	arm.UpdatesAcked = len(acked)

	// Steady-state hit rate on the warmed cache.
	entry := c.Sites[target]
	arm.SteadyHitPct = durabilityHitRate(fe, entry, queries, rounds)
	arm.Queries += rounds * len(queries)

	// Quiesce, capture the control state, then kill without warning.
	pre := durabilityStoreBytes(entry)
	preOwned := durabilitySortedOwned(entry)
	entry.Crash()
	if wipe {
		fatal(os.RemoveAll(filepath.Join(dataDir, target)))
	}

	t0 := time.Now()
	restarted, err := c.RestartSite(target)
	fatal(err)
	arm.RecoveryMs = float64(time.Since(t0).Microseconds()) / 1000
	arm.Recovered = restarted.RecoverySeconds() > 0

	arm.ByteIdentical = durabilityStoreBytes(restarted) == pre
	got := durabilitySortedOwned(restarted)
	arm.OwnedEqual = strings.Join(got, "|") == strings.Join(preOwned, "|")
	snap := restarted.StoreSnapshot()
	for k, v := range acked {
		p, err := xmldb.ParseIDPath(k)
		if err != nil {
			arm.LostAcked++
			continue
		}
		n := snap.NodeAt(p)
		present := false
		if n != nil {
			for _, ch := range n.ChildrenNamed("available") {
				if ch.Text == v {
					present = true
				}
			}
		}
		if !present {
			arm.LostAcked++
		}
	}

	// Post-restart hit rate over the same query set.
	arm.PostHitPct = durabilityHitRate(fe, restarted, queries, rounds)
	arm.Queries += rounds * len(queries)
	return arm
}

func durabilityHitRate(fe *service.Frontend, s *site.Site, queries []string, rounds int) float64 {
	h0 := s.Metrics.CacheHits.Value()
	n := 0
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			if _, err := fe.Query(q); err == nil {
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(s.Metrics.CacheHits.Value()-h0) / float64(n)
}

func durabilityStoreBytes(s *site.Site) string {
	snap := s.StoreSnapshot()
	return snap.Root.StringSized(snap.Size())
}

func durabilitySortedOwned(s *site.Site) []string {
	keys := s.OwnedPaths()
	sort.Strings(keys)
	return keys
}
