// Command irisbench regenerates the experiments of the paper's Section 5
// and prints each figure's rows/series. Absolute numbers reflect the
// simulated substrate (see DESIGN.md); the comparisons within each figure
// are the reproduction target.
//
// Usage:
//
//	irisbench -exp all            # every experiment (several minutes)
//	irisbench -exp fig7 -dur 5s   # one experiment, longer measurement
//
// Experiments: updates, fig7, fig8, fig9, fig10, fig11, latency, faults,
// trace-overhead, read-write-mix, batching, cache-pressure, local-eval,
// obs-overhead, aggregates, replication, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"irisnet/internal/cluster"
	"irisnet/internal/metrics"
	"irisnet/internal/sensor"
	"irisnet/internal/transport"
	"irisnet/internal/workload"
)

var (
	expFlag   = flag.String("exp", "all", "experiment: updates|fig7|fig8|fig9|fig10|fig11|latency|faults|trace-overhead|read-write-mix|batching|cache-pressure|local-eval|obs-overhead|aggregates|replication|durability|all")
	durFlag   = flag.Duration("dur", 3*time.Second, "measurement duration per cell")
	clients   = flag.Int("clients", 24, "closed-loop query clients")
	largeFlag = flag.Bool("large", false, "use the x8 database where applicable")
	shortFlag = flag.Bool("short", false, "smoke mode: clamp duration and client count (CI)")
	faultFlag = flag.String("faults", "drop=0.05,stallrate=0.05,stall=40ms",
		"fault injection for -exp faults: drop=<rate>,stallrate=<rate>,stall=<dur>")
)

func main() {
	flag.Parse()
	exps := map[string]func(){
		"updates":        runUpdates,
		"fig7":           runFig7,
		"fig8":           runFig8,
		"fig9":           runFig9,
		"fig10":          runFig10,
		"fig11":          runFig11,
		"latency":        runLatency,
		"faults":         runFaults,
		"trace-overhead": runTraceOverhead,
		"read-write-mix": runReadWriteMix,
		"batching":       runBatching,
		"cache-pressure": runCachePressure,
		"local-eval":     runLocalEval,
		"obs-overhead":   runObsOverhead,
		"aggregates":     runAggregates,
		"replication":    runReplication,
		"durability":     runDurability,
	}
	order := []string{"updates", "fig7", "fig8", "fig9", "fig10", "fig11", "latency", "faults", "trace-overhead", "read-write-mix", "batching", "cache-pressure", "local-eval", "obs-overhead", "aggregates", "replication", "durability"}
	if *expFlag == "all" {
		for _, name := range order {
			exps[name]()
		}
		return
	}
	fn, ok := exps[*expFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want %s|all)\n", *expFlag, strings.Join(order, "|"))
		os.Exit(2)
	}
	fn()
}

func baseCfg() cluster.Config {
	cfg := cluster.PaperCalibration(cluster.Config{DB: workload.PaperSmall()})
	if *largeFlag {
		cfg.DB = workload.PaperLarge()
	}
	return cfg
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// runUpdates reproduces Section 5.2: update throughput vs number of OAs.
func runUpdates() {
	header("Section 5.2 — sensor update handling (updates/sec vs #OAs)")
	fmt.Printf("%-8s %14s %12s\n", "OAs", "updates/sec", "per-OA")
	var base float64
	for _, oas := range []int{1, 2, 4, 8} {
		cfg := baseCfg()
		cfg.BlockSites = oas
		c, err := cluster.New(cluster.CentralQueryDistUpdate, cfg)
		fatal(err)
		agents, err := sensor.SplitTargets(c.UpdatePaths(), 4*oas, c.Net, c.NewResolver)
		fatal(err)
		gen := sensor.NewGenerator(agents)
		total := gen.Run(*durFlag)
		rate := float64(total) / durFlag.Seconds()
		if oas == 1 {
			base = rate
		}
		fmt.Printf("%-8d %14.1f %12.1f   (x%.2f of 1-OA rate)\n", oas, rate, rate/float64(oas), rate/base)
		c.Close()
	}
	fmt.Println("Paper: ~200 updates/sec per OA, scaling linearly with #OAs.")
}

// runFig7 reproduces Figure 7.
func runFig7() {
	header("Figure 7 — query throughput (queries/sec), Architectures 1-4 x workloads")
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"QW-1", workload.QW1}, {"QW-2", workload.QW2},
		{"QW-3", workload.QW3}, {"QW-4", workload.QW4},
		{"QW-Mix", workload.QWMix},
	}
	fmt.Printf("%-28s", "")
	for _, m := range mixes {
		fmt.Printf("%10s", m.name)
	}
	fmt.Println()
	for _, arch := range []cluster.Architecture{
		cluster.Centralized, cluster.CentralQueryDistUpdate,
		cluster.DistQueryFixed, cluster.Hierarchical,
	} {
		fmt.Printf("%-28s", fmt.Sprintf("Architecture %d", int(arch)))
		for _, m := range mixes {
			c, err := cluster.New(arch, baseCfg())
			fatal(err)
			res := c.RunLoad(cluster.LoadOpts{
				Clients: *clients, Duration: *durFlag, Mix: m.mix,
				HitRatio: -1, UpdateRate: 200,
			})
			fmt.Printf("%10.1f", res.Throughput())
			c.Close()
		}
		fmt.Println()
	}
	fmt.Println("Paper shape: Arch4 best on QW-Mix (>=60%); Arch3 ~3x Arch2 on QW-1; Arch4 ~25% below Arch3 on QW-1.")
}

// runFig8 reproduces Figure 8.
func runFig8() {
	header("Figure 8 — skewed workload (90% to one neighborhood): original vs balanced")
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"QW-1", workload.QW1}, {"QW-2", workload.QW2}, {"QW-Mix2", workload.QWMix2},
	}
	fmt.Printf("%-24s", "")
	for _, m := range mixes {
		fmt.Printf("%10s", m.name)
	}
	fmt.Println()
	for _, balanced := range []bool{false, true} {
		label := "Original distribution"
		if balanced {
			label = "Balanced distribution"
		}
		fmt.Printf("%-24s", label)
		for _, m := range mixes {
			var c *cluster.Cluster
			var err error
			if balanced {
				c, err = cluster.BalancedSkewCluster(baseCfg(), 0, 0)
			} else {
				c, err = cluster.New(cluster.Hierarchical, baseCfg())
			}
			fatal(err)
			res := c.RunLoad(cluster.LoadOpts{
				Clients: *clients, Duration: *durFlag, Mix: m.mix,
				SkewCity: 0, SkewNB: 0, SkewPct: 90, HitRatio: -1,
			})
			fmt.Printf("%10.1f", res.Throughput())
			c.Close()
		}
		fmt.Println()
	}
	fmt.Println("Paper shape: balanced ~4x original on the skewed workloads.")
}

// runFig9 reproduces Figure 9: throughput over time while the hot
// neighborhood's blocks are delegated one at a time.
func runFig9() {
	header("Figure 9 — dynamic load balancing (queries finished per window)")
	c, err := cluster.New(cluster.Hierarchical, baseCfg())
	fatal(err)
	defer c.Close()
	total := 4 * *durFlag
	window := total / 20
	plan := cluster.MigrationPlan{
		HotCity: 0, HotNB: 0,
		StartAfter: total / 4,
		Interval:   total / 2 / time.Duration(c.DB.Cfg.Blocks),
	}
	tl, res, err := c.RunDynamicLoadBalance(cluster.LoadOpts{
		Clients: *clients, Duration: total, Mix: workload.QW1,
		SkewCity: 0, SkewNB: 0, SkewPct: 90, HitRatio: -1,
	}, plan, window)
	fatal(err)
	start := plan.StartAfter
	end := plan.StartAfter + time.Duration(c.DB.Cfg.Blocks)*plan.Interval
	fmt.Printf("window=%v, delegation active %v..%v (marked *)\n", window, start, end)
	var before, after float64
	var nb, na int
	for i, n := range tl.Windows() {
		t := time.Duration(i) * window
		marker := " "
		if t >= start && t <= end {
			marker = "*"
		}
		bar := strings.Repeat("#", int(n)/2)
		fmt.Printf("t=%-8v %s %5d %s\n", t, marker, n, bar)
		if t < start {
			before += float64(n)
			nb++
		}
		if t > end {
			after += float64(n)
			na++
		}
	}
	if nb > 0 && na > 0 {
		fmt.Printf("steady-state: before=%.1f/window after=%.1f/window (x%.2f)\n",
			before/float64(nb), after/float64(na), (after/float64(na))/(before/float64(nb)))
	}
	fmt.Printf("total queries: %d, errors: %d\n", res.Completed, res.Errors)
	fmt.Println("Paper shape: throughput ~3x after delegation completes, queries answered throughout.")
}

// runFig10 reproduces Figure 10.
func runFig10() {
	header("Figure 10 — caching throughput (Architecture 4)")
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"QW-1", workload.QW1}, {"QW-2", workload.QW2},
		{"QW-3", workload.QW3}, {"QW-4", workload.QW4},
		{"QW-Mix", workload.QWMix},
	}
	modes := []struct {
		name     string
		caching  bool
		bypass   bool
		hitRatio float64
	}{
		{"No caching", false, false, -1},
		{"Caching, no hits", true, true, -1},
		{"Caching, 50% hits", true, false, 0.5},
		{"Caching, 100% hits", true, false, 1.0},
	}
	fmt.Printf("%-22s", "")
	for _, m := range mixes {
		fmt.Printf("%10s", m.name)
	}
	fmt.Println()
	for _, mode := range modes {
		fmt.Printf("%-22s", mode.name)
		for _, m := range mixes {
			cfg := baseCfg()
			cfg.Caching = mode.caching
			cfg.CacheBypass = mode.bypass
			c, err := cluster.New(cluster.Hierarchical, cfg)
			fatal(err)
			res := c.RunLoad(cluster.LoadOpts{
				Clients: *clients, Duration: *durFlag, Mix: m.mix,
				HitRatio: mode.hitRatio,
			})
			fmt.Printf("%10.1f", res.Throughput())
			c.Close()
		}
		fmt.Println()
	}
	fmt.Println("Paper shape: minimal overhead with no hits; 100% hits REDUCES QW-3/QW-4 (top sites bottleneck);")
	fmt.Println("             caching improves QW-Mix (idle top sites absorb load).")
}

// runFig11 reproduces the Figure 11 micro-benchmarks: per-stage time for a
// type-1 query by entry level, plan-creation mode and database size.
func runFig11() {
	header("Figure 11 — micro-benchmarks: time breakdown per query (ms)")
	type variant struct {
		name  string
		db    workload.DBConfig
		naive bool
	}
	variants := []variant{
		{"Small DB, naive plan creation", workload.PaperSmall(), true},
		{"Small DB, fast plan creation", workload.PaperSmall(), false},
		{"Large DB, fast plan creation", workload.PaperLarge(), false},
	}
	levels := []struct {
		name  string
		entry func() string
	}{
		{"county", func() string { return cluster.RootSiteName }},
		{"city", func() string { return cluster.CitySiteName(0) }},
		{"neighborhood", func() string { return cluster.NBSiteName(0, 0) }},
	}
	for _, v := range variants {
		fmt.Printf("\n--- %s ---\n", v.name)
		fmt.Printf("%-14s %10s %10s %12s %8s %8s\n", "entry", "create", "exec-QEG", "comm", "rest", "total")
		for _, lvl := range levels {
			// Real engine times, no synthetic service costs and no
			// simulated wire latency: like the paper's LAN micro-bench,
			// "communication" is the CPU cost of constructing and
			// deconstructing messages, not propagation delay.
			cfg := cluster.Config{DB: v.db, NaivePlans: v.naive}
			c, err := cluster.New(cluster.Hierarchical, cfg)
			fatal(err)
			fe := c.NewFrontend()
			fe.ForceEntry = lvl.entry()
			gen := workload.NewGen(c.DB, workload.QW1, 77)
			n := 200
			lat := metrics.NewHistogram(0)
			for i := 0; i < n; i++ {
				q, _ := gen.Next()
				t0 := time.Now()
				_, err := fe.Query(q)
				fatal(err)
				lat.Observe(time.Since(t0))
			}
			create, exec, comm, rest := breakdownOf(c)
			fmt.Printf("%-14s %10.3f %10.3f %12.3f %8.3f %8.3f\n",
				lvl.name, create, exec, comm, rest, ms(lat.Mean()))
			c.Close()
		}
	}
	fmt.Println("\nPaper shape: direct-to-neighborhood cuts total >50%; naive plan creation dominates the naive")
	fmt.Println("rows; the x8 database adds <20% per-node time.")
}

// breakdownOf sums the per-stage means across sites weighted by the number
// of queries each site handled.
func breakdownOf(c *cluster.Cluster) (create, exec, comm, rest float64) {
	var totalQ int64
	for _, s := range c.Sites {
		q := s.Metrics.Queries.Value()
		if q == 0 {
			continue
		}
		totalQ += q
		create += ms(s.Metrics.Breakdown.Mean("create-plan")) * float64(q)
		exec += ms(s.Metrics.Breakdown.Mean("execute-qeg")) * float64(q)
		comm += ms(s.Metrics.Breakdown.Mean("communication")) * float64(q)
		rest += ms(s.Metrics.Breakdown.Mean("rest")) * float64(q)
	}
	if totalQ == 0 {
		return
	}
	f := float64(totalQ)
	return create / f, exec / f, comm / f, rest / f
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// runLatency reproduces the Section 5.5 latency observation. Unlike the
// throughput experiments this runs at light load (the paper's latency
// numbers are about path length, not queueing): a few closed-loop clients
// over a repeated working set, so cache hits genuinely shorten the path.
func runLatency() {
	header("Section 5.5 — caching effect on latency (ms, mean / p95), light load")
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"QW-3", workload.QW3}, {"QW-4", workload.QW4}, {"QW-Mix", workload.QWMix},
	}
	fmt.Printf("%-14s %18s %18s %10s\n", "workload", "no caching", "caching", "saving")
	for _, m := range mixes {
		var means [2]float64
		var p95s [2]float64
		for i, caching := range []bool{false, true} {
			cfg := baseCfg()
			cfg.Caching = caching
			c, err := cluster.New(cluster.Hierarchical, cfg)
			fatal(err)
			// Identical repeated working set in both runs; with caching on,
			// repeats after the first pass are hits.
			res := c.RunLoad(cluster.LoadOpts{
				Clients: 3, Duration: *durFlag, Mix: m.mix,
				HitRatio: 0.9, WarmPool: 8,
			})
			means[i] = ms(res.Latency.Mean())
			p95s[i] = ms(res.Latency.Quantile(0.95))
			c.Close()
		}
		saving := 100 * (1 - means[1]/means[0])
		fmt.Printf("%-14s %9.1f/%-8.1f %9.1f/%-8.1f %9.1f%%\n",
			m.name, means[0], p95s[0], means[1], p95s[1], saving)
	}
	fmt.Println("Paper: latency reduced 10-33% for type-3/4 and mixed workloads (LAN; more in WANs).")
}

// parseFaults decodes the -faults flag ("drop=0.05,stallrate=0.05,stall=40ms").
func parseFaults(s string) (transport.FaultConfig, error) {
	var cfg transport.FaultConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("bad fault spec %q (want key=value)", part)
		}
		switch k {
		case "drop":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("bad drop rate %q: %v", v, err)
			}
			cfg.DropRate = f
		case "stallrate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("bad stall rate %q: %v", v, err)
			}
			cfg.StallRate = f
		case "stall":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("bad stall duration %q: %v", v, err)
			}
			cfg.Stall = d
		default:
			return cfg, fmt.Errorf("unknown fault key %q (want drop|stallrate|stall)", k)
		}
	}
	return cfg, nil
}

// runFaults measures the robustness layer: the QW-Mix workload on
// architecture 4 with injected drops and stalls on every site, comparing a
// fault-free baseline against the faulty run. Queries carry an end-to-end
// deadline; site-to-site calls time out, retry with backoff and finally
// yield partial answers, so the error rate stays near zero while the
// partial-answer rate absorbs the injected faults.
func runFaults() {
	fc, err := parseFaults(*faultFlag)
	fatal(err)
	header(fmt.Sprintf("Fault tolerance — QW-Mix on Architecture 4 (drop=%.2f stallrate=%.2f stall=%v)",
		fc.DropRate, fc.StallRate, fc.Stall))
	fmt.Printf("%-18s %10s %10s %10s %10s %10s %10s %10s\n",
		"", "q/sec", "mean-ms", "p95-ms", "err%", "partial%", "retries", "ddl-hits")
	scenarios := []struct {
		label             string
		faulty, partition bool
	}{
		{"No faults", false, false},
		{"Injected faults", true, false},
		{"Faults+partition", true, true},
	}
	for _, sc := range scenarios {
		cfg := baseCfg()
		cfg.Seed = 7
		cfg.CallTimeout = 150 * time.Millisecond
		cfg.QueryTimeout = 2 * time.Second
		c, err := cluster.New(cluster.Hierarchical, cfg)
		fatal(err)
		if sc.faulty {
			for name := range c.Sites {
				c.Net.SetFaults(name, fc)
			}
		}
		if sc.partition {
			// One neighborhood site goes dark entirely: its subtree turns
			// into unreachable markers instead of failing the queries.
			c.Net.Partition(cluster.NBSiteName(0, 0))
		}
		res := c.RunLoad(cluster.LoadOpts{
			Clients: *clients, Duration: *durFlag, Mix: workload.QWMix,
			HitRatio: -1,
		})
		var retries, ddl int64
		for _, s := range c.Sites {
			retries += s.Metrics.Retries.Value()
			ddl += s.Metrics.DeadlineHits.Value()
		}
		issued := res.Completed + res.Errors
		errPct := 0.0
		if issued > 0 {
			errPct = 100 * float64(res.Errors) / float64(issued)
		}
		fmt.Printf("%-18s %10.1f %10.1f %10.1f %10.2f %10.2f %10d %10d\n",
			sc.label, res.Throughput(), ms(res.Latency.Mean()), ms(res.Latency.Quantile(0.95)),
			errPct, 100*res.PartialRate(), retries, ddl)
		c.Close()
	}
	fmt.Println("Expected shape: retries absorb drops and stalls (err% ~0, modest latency/throughput cost).")
	fmt.Println("Partitioning a site converts spanning queries into partial answers; only queries that must")
	fmt.Println("ENTER at the dead site hard-fail, after burning their deadline (hence the p95 spike).")
}

// runTraceOverhead measures the cost of distributed tracing: the QW-Mix
// workload on architecture 4 with tracing off, then on (every query carries
// a TraceID, every hop records and returns a span, the frontend assembles
// the tree and discards it). The acceptance bar is <5% throughput loss.
func runTraceOverhead() {
	header("Tracing overhead — QW-Mix on Architecture 4, tracing off vs on")
	fmt.Printf("%-16s %10s %10s %10s\n", "", "q/sec", "mean-ms", "p95-ms")
	var rates [2]float64
	for i, traced := range []bool{false, true} {
		cfg := baseCfg()
		cfg.Seed = 7
		c, err := cluster.New(cluster.Hierarchical, cfg)
		fatal(err)
		res := c.RunLoad(cluster.LoadOpts{
			Clients: *clients, Duration: *durFlag, Mix: workload.QWMix,
			HitRatio: -1, Trace: traced,
		})
		rates[i] = res.Throughput()
		label := "Tracing off"
		if traced {
			label = "Tracing on"
		}
		fmt.Printf("%-16s %10.1f %10.1f %10.1f\n",
			label, res.Throughput(), ms(res.Latency.Mean()), ms(res.Latency.Quantile(0.95)))
		c.Close()
	}
	if rates[0] > 0 {
		fmt.Printf("overhead: %.1f%% throughput loss with tracing on (target <5%%)\n",
			100*(1-rates[1]/rates[0]))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisbench:", err)
		os.Exit(1)
	}
}
