package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"irisnet/internal/cluster"
	"irisnet/internal/metrics"
	"irisnet/internal/service"
	"irisnet/internal/workload"
)

// runBatching measures the batched, coalesced subquery dispatch path
// (BENCH_PR4): three arms — unbatched (one message per subquery, no
// coalescing), batched (one KindBatch message per destination site) and
// batched+coalesced (the defaults) — across three workloads:
//
//   - high-fanout: neighborhood-wide queries on Architecture 2 over a
//     WAN-ish simulated network. Each query misses every block stub of the
//     neighborhood (20 in the paper-small database), and the blocks
//     round-robin over a few worker sites, so batching collapses ~20
//     messages into one per site. Acceptance: >=30% fewer subquery-path
//     RPCs and a measurable p50 win.
//   - hot-spot: rounds of identical concurrent cold queries entering a
//     caching hierarchy at the root. Without coalescing every concurrent
//     miss fetches upstream; with coalescing they join one flight.
//     Acceptance: >=50% fewer upstream subqueries than the uncoalesced arm.
//   - single-subquery: block queries that produce exactly one subquery, to
//     show the batch path does not tax the common case. Acceptance: p50
//     within 15% of the unbatched arm.
//
// Results are printed and written to BENCH_PR4.json for machines.
func runBatching() {
	dur := *durFlag
	cl := *clients
	if *shortFlag {
		if dur > 700*time.Millisecond {
			dur = 700 * time.Millisecond
		}
		if cl > 8 {
			cl = 8
		}
	}
	header(fmt.Sprintf("Batched + coalesced subquery dispatch (dur=%v, clients=%d)", dur, cl))

	rep := batchReport{
		Experiment:   "batching",
		DurationSecs: dur.Seconds(),
		Clients:      cl,
		Short:        *shortFlag,
	}
	rep.HighFanout = benchHighFanout(dur, cl)
	rep.HotSpot = benchHotSpot(dur, cl)
	rep.Single = benchSingleSubquery(dur, cl)
	rep.Pass = rep.HighFanout.PassRPC && rep.HighFanout.PassP50 &&
		rep.HotSpot.Pass && rep.Single.Pass

	fmt.Printf("\nacceptance: high-fanout rpc -%.1f%% (>=30)=%v, p50 -%.1f%% (measurable)=%v; "+
		"hot-spot upstream subqueries -%.1f%% (>=50)=%v; single-subquery p50 x%.2f (<=1.15)=%v\n",
		rep.HighFanout.RPCReductionPct, rep.HighFanout.PassRPC,
		rep.HighFanout.P50ImprovementPct, rep.HighFanout.PassP50,
		rep.HotSpot.SubqueryReductionPct, rep.HotSpot.Pass,
		rep.Single.P50Ratio, rep.Single.Pass)
	fmt.Printf("overall pass=%v\n", rep.Pass)

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile("BENCH_PR4.json", buf, 0o644))
	fmt.Println("wrote BENCH_PR4.json")
}

type batchReport struct {
	Experiment   string      `json:"experiment"`
	DurationSecs float64     `json:"duration_secs"`
	Clients      int         `json:"clients"`
	Short        bool        `json:"short"`
	HighFanout   fanoutPart  `json:"high_fanout"`
	HotSpot      hotspotPart `json:"hot_spot"`
	Single       singlePart  `json:"single_subquery"`
	Pass         bool        `json:"pass"`
}

type fanoutPart struct {
	Arms              []armStats `json:"arms"`
	RPCReductionPct   float64    `json:"rpc_reduction_pct"`
	P50ImprovementPct float64    `json:"p50_improvement_pct"`
	PassRPC           bool       `json:"pass_rpc"`
	PassP50           bool       `json:"pass_p50"`
}

type hotspotPart struct {
	Arms                 []armStats `json:"arms"`
	SubqueryReductionPct float64    `json:"upstream_subquery_reduction_pct"`
	Pass                 bool       `json:"pass"`
}

type singlePart struct {
	Arms     []armStats `json:"arms"`
	P50Ratio float64    `json:"p50_ratio"`
	Pass     bool       `json:"pass"`
}

// batchArm names one point in the batching/coalescing knob space.
type batchArm struct {
	Name              string
	DisableBatching   bool
	DisableCoalescing bool
}

var batchArms = []batchArm{
	{"unbatched", true, true},
	{"batched", false, true},
	{"batched+coalesced", false, false},
}

type armStats struct {
	Arm                string  `json:"arm"`
	Queries            int64   `json:"queries"`
	Errors             int64   `json:"errors"`
	P50Ms              float64 `json:"p50_ms"`
	MeanMs             float64 `json:"mean_ms"`
	Subqueries         int64   `json:"subqueries"`
	SubqueryRPCs       int64   `json:"subquery_rpcs"`
	Batches            int64   `json:"batches"`
	Coalesced          int64   `json:"coalesced"`
	RPCsPerQuery       float64 `json:"rpcs_per_query"`
	SubqueriesPerQuery float64 `json:"subqueries_per_query"`
}

// collectArm sums the subquery-path metrics over every site and folds in
// the client-side latency distribution.
func collectArm(c *cluster.Cluster, name string, queries, errs int64, lat *metrics.Histogram) armStats {
	st := armStats{Arm: name, Queries: queries, Errors: errs,
		P50Ms: ms(lat.Quantile(0.5)), MeanMs: ms(lat.Mean())}
	for _, s := range c.Sites {
		st.Subqueries += s.Metrics.Subqueries.Value()
		st.SubqueryRPCs += s.Metrics.SubqueryRPCs.Value()
		st.Batches += s.Metrics.Batches.Value()
		st.Coalesced += s.Metrics.Coalesced.Value()
	}
	if queries > 0 {
		st.RPCsPerQuery = float64(st.SubqueryRPCs) / float64(queries)
		st.SubqueriesPerQuery = float64(st.Subqueries) / float64(queries)
	}
	return st
}

func printArmHeader() {
	fmt.Printf("%-20s %8s %9s %9s %10s %8s %8s %9s %10s %10s\n",
		"arm", "queries", "p50-ms", "mean-ms", "subq", "rpcs", "batches", "coalesced", "rpcs/q", "subq/q")
}

func printArm(st armStats) {
	fmt.Printf("%-20s %8d %9.1f %9.1f %10d %8d %8d %9d %10.2f %10.2f\n",
		st.Arm, st.Queries, st.P50Ms, st.MeanMs, st.Subqueries, st.SubqueryRPCs,
		st.Batches, st.Coalesced, st.RPCsPerQuery, st.SubqueriesPerQuery)
}

// closedLoop drives clients each issuing next(client, seq) for dur.
func closedLoop(c *cluster.Cluster, clientN int, dur time.Duration, next func(client, seq int) string) (int64, int64, *metrics.Histogram) {
	lat := metrics.NewHistogram(0)
	var queries, errs atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < clientN; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fe := c.NewFrontend()
			for seq := 0; !stop.Load(); seq++ {
				q := next(id, seq)
				t0 := time.Now()
				if _, err := fe.QueryFull(context.Background(), q); err != nil {
					errs.Add(1)
					continue
				}
				lat.Observe(time.Since(t0))
				queries.Add(1)
			}
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return queries.Load(), errs.Load(), lat
}

// roundLoop runs rounds for dur: in each round every client concurrently
// issues the SAME query, then all wait before the next round moves to the
// next query. That concentrates identical concurrent cold misses, the shape
// single-flight coalescing exists for.
func roundLoop(c *cluster.Cluster, clientN int, dur time.Duration, queries []string) (int64, int64, *metrics.Histogram) {
	lat := metrics.NewHistogram(0)
	var done, errs atomic.Int64
	fes := make([]*service.Frontend, clientN)
	for i := range fes {
		fes[i] = c.NewFrontend()
	}
	deadline := time.Now().Add(dur)
	for r := 0; time.Now().Before(deadline); r++ {
		q := queries[r%len(queries)]
		var wg sync.WaitGroup
		for i := 0; i < clientN; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				t0 := time.Now()
				if _, err := fes[id].QueryFull(context.Background(), q); err != nil {
					errs.Add(1)
					return
				}
				lat.Observe(time.Since(t0))
				done.Add(1)
			}(i)
		}
		wg.Wait()
	}
	return done.Load(), errs.Load(), lat
}

// benchHighFanout: Architecture 2 (central query, distributed update) with
// neighborhood-wide queries over a WAN-ish network. Every query misses all
// 20 block stubs of one neighborhood; blocks round-robin over 4 worker
// sites, so the batched arms ship 4 messages where the unbatched arm
// ships 20.
func benchHighFanout(dur time.Duration, cl int) fanoutPart {
	fmt.Println("\n-- high-fanout: neighborhood-wide queries, Architecture 2, WAN latency --")
	printArmHeader()
	var part fanoutPart
	for _, arm := range batchArms {
		cfg := cluster.Config{
			DB:      workload.PaperSmall(),
			Latency: 20 * time.Millisecond, Jitter: 8 * time.Millisecond,
			PerMessage: 2 * time.Millisecond,
			Seed:       7, BlockSites: 4,
			DisableBatching:   arm.DisableBatching,
			DisableCoalescing: arm.DisableCoalescing,
		}
		c, err := cluster.New(cluster.CentralQueryDistUpdate, cfg)
		fatal(err)
		qs := nbWideQueries(c.DB)
		queries, errs, lat := closedLoop(c, cl, dur, func(client, seq int) string {
			return qs[(client+seq)%len(qs)]
		})
		st := collectArm(c, arm.Name, queries, errs, lat)
		part.Arms = append(part.Arms, st)
		printArm(st)
		c.Close()
	}
	base, batched := part.Arms[0], part.Arms[1]
	if base.RPCsPerQuery > 0 {
		part.RPCReductionPct = 100 * (1 - batched.RPCsPerQuery/base.RPCsPerQuery)
	}
	if base.P50Ms > 0 {
		part.P50ImprovementPct = 100 * (1 - batched.P50Ms/base.P50Ms)
	}
	part.PassRPC = part.RPCReductionPct >= 30
	part.PassP50 = part.P50ImprovementPct >= 5
	return part
}

// nbWideQueries returns one all-blocks query per neighborhood.
func nbWideQueries(db *workload.DB) []string {
	var qs []string
	for c := 0; c < db.Cfg.Cities; c++ {
		for n := 0; n < db.Cfg.Neighborhoods; n++ {
			qs = append(qs, db.NeighborhoodPath(c, n).String()+"/block/parkingSpace[available='yes']")
		}
	}
	return qs
}

// benchHotSpot: caching hierarchy, every query forced through the root
// site, rounds of identical concurrent cold queries. The coalesced arm
// answers each round with ~1 upstream fetch; the uncoalesced arms fetch
// once per concurrent miss.
func benchHotSpot(dur time.Duration, cl int) hotspotPart {
	fmt.Println("\n-- hot-spot: identical concurrent cold queries at the root, caching on --")
	printArmHeader()
	var part hotspotPart
	for _, arm := range batchArms[1:] { // batching identical in both arms; vary coalescing
		cfg := cluster.Config{
			DB:      workload.PaperSmall(),
			Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
			Seed: 7, Caching: true, ForceEntry: cluster.RootSiteName,
			DisableBatching:   arm.DisableBatching,
			DisableCoalescing: arm.DisableCoalescing,
		}
		c, err := cluster.New(cluster.Hierarchical, cfg)
		fatal(err)
		var qs []string
		for ci := 0; ci < c.DB.Cfg.Cities; ci++ {
			for n := 0; n < c.DB.Cfg.Neighborhoods; n++ {
				for b := 0; b < c.DB.Cfg.Blocks; b++ {
					qs = append(qs, c.DB.BlockQuery(ci, n, b))
				}
			}
		}
		queries, errs, lat := roundLoop(c, cl, dur, qs)
		st := collectArm(c, arm.Name, queries, errs, lat)
		part.Arms = append(part.Arms, st)
		printArm(st)
		c.Close()
	}
	base, coalesced := part.Arms[0], part.Arms[1]
	if base.SubqueriesPerQuery > 0 {
		part.SubqueryReductionPct = 100 * (1 - coalesced.SubqueriesPerQuery/base.SubqueriesPerQuery)
	}
	part.Pass = part.SubqueryReductionPct >= 50
	return part
}

// benchSingleSubquery: block queries on Architecture 2 — exactly one
// subquery per query, so destination groups are singletons and the batch
// path must cost nothing.
func benchSingleSubquery(dur time.Duration, cl int) singlePart {
	fmt.Println("\n-- single-subquery: block queries, Architecture 2 (no batching possible) --")
	printArmHeader()
	var part singlePart
	for _, arm := range []batchArm{batchArms[0], batchArms[2]} {
		cfg := cluster.Config{
			DB:      workload.PaperSmall(),
			Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
			Seed: 7, BlockSites: 4,
			DisableBatching:   arm.DisableBatching,
			DisableCoalescing: arm.DisableCoalescing,
		}
		c, err := cluster.New(cluster.CentralQueryDistUpdate, cfg)
		fatal(err)
		db := c.DB
		queries, errs, lat := closedLoop(c, cl, dur, func(client, seq int) string {
			i := client*7919 + seq
			ci := i % db.Cfg.Cities
			n := (i / db.Cfg.Cities) % db.Cfg.Neighborhoods
			b := (i / (db.Cfg.Cities * db.Cfg.Neighborhoods)) % db.Cfg.Blocks
			return db.BlockQuery(ci, n, b)
		})
		st := collectArm(c, arm.Name, queries, errs, lat)
		part.Arms = append(part.Arms, st)
		printArm(st)
		c.Close()
	}
	if part.Arms[0].P50Ms > 0 {
		part.P50Ratio = part.Arms[1].P50Ms / part.Arms[0].P50Ms
	}
	part.Pass = part.P50Ratio > 0 && part.P50Ratio <= 1.15
	return part
}
