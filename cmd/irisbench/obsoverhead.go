package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"irisnet/internal/cluster"
	"irisnet/internal/workload"
)

// runObsOverhead measures the cost of the freshness ledger (BENCH_PR7):
// the per-answer provenance/staleness accounting added for observability.
// Two scenarios, each comparing ledger off vs ledger on (the default):
//
//   - raw-engine: no synthetic service costs and no simulated wire
//     latency, caching hierarchy with a 50%-hit working set. Here every
//     microsecond is real engine work, so the ledger's relative cost is
//     at its largest. This is the gated scenario: median p50 with the
//     ledger on must be within 5% of the ledger-off arm.
//   - calibrated: the paper-calibrated substrate (1.5ms links, 2ms query
//     service time). Informational — synthetic costs dominate, showing
//     what the ledger costs a realistic deployment.
//
// Arms are interleaved (off, on, off, on, ...) and the median over reps
// is compared, so background noise lands on both arms equally. Results
// are printed and written to BENCH_PR7.json for machines.
func runObsOverhead() {
	dur := *durFlag
	cl := *clients
	reps := 5
	if *shortFlag {
		if dur > 500*time.Millisecond {
			dur = 500 * time.Millisecond
		}
		if cl > 8 {
			cl = 8
		}
		reps = 3
	}
	header(fmt.Sprintf("Freshness-ledger overhead (dur=%v, clients=%d, reps=%d)", dur, cl, reps))

	rep := obsReport{
		Experiment:   "obs-overhead",
		DurationSecs: dur.Seconds(),
		Clients:      cl,
		Reps:         reps,
		Short:        *shortFlag,
	}
	rep.RawEngine = benchLedgerArms("raw-engine", dur, cl, reps, func() cluster.Config {
		return cluster.Config{DB: workload.PaperSmall(), Seed: 7, Caching: true}
	})
	rep.Calibrated = benchLedgerArms("calibrated", dur, cl, reps, func() cluster.Config {
		cfg := baseCfg()
		cfg.Seed = 7
		cfg.Caching = true
		return cfg
	})
	rep.RawEngine.Gated = true
	rep.Pass = rep.RawEngine.OverheadPct < 5

	fmt.Printf("\nacceptance: raw-engine p50 overhead %.2f%% (<5%%) => pass=%v (calibrated: %.2f%%, informational)\n",
		rep.RawEngine.OverheadPct, rep.Pass, rep.Calibrated.OverheadPct)

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile("BENCH_PR7.json", buf, 0o644))
	fmt.Println("wrote BENCH_PR7.json")
}

type obsReport struct {
	Experiment   string      `json:"experiment"`
	DurationSecs float64     `json:"duration_secs"`
	Clients      int         `json:"clients"`
	Reps         int         `json:"reps"`
	Short        bool        `json:"short"`
	RawEngine    obsScenario `json:"raw_engine"`
	Calibrated   obsScenario `json:"calibrated"`
	Pass         bool        `json:"pass"`
}

type obsScenario struct {
	Scenario       string    `json:"scenario"`
	LedgerOffP50Ms []float64 `json:"ledger_off_p50_ms"`
	LedgerOnP50Ms  []float64 `json:"ledger_on_p50_ms"`
	OffMedianP50Ms float64   `json:"off_median_p50_ms"`
	OnMedianP50Ms  float64   `json:"on_median_p50_ms"`
	OffQPS         float64   `json:"off_qps"`
	OnQPS          float64   `json:"on_qps"`
	OverheadPct    float64   `json:"p50_overhead_pct"`
	Gated          bool      `json:"gated"`
}

// benchLedgerArms interleaves ledger-off and ledger-on runs of the same
// workload and reports the median p50 of each arm.
func benchLedgerArms(name string, dur time.Duration, cl, reps int, mkCfg func() cluster.Config) obsScenario {
	fmt.Printf("\n-- %s --\n", name)
	fmt.Printf("%-6s %-12s %10s %10s %10s\n", "rep", "arm", "q/sec", "p50-ms", "mean-ms")
	sc := obsScenario{Scenario: name}
	var offQ, onQ, secs float64
	for r := 0; r < reps; r++ {
		for _, ledgerOff := range []bool{true, false} {
			cfg := mkCfg()
			cfg.DisableFreshnessLedger = ledgerOff
			c, err := cluster.New(cluster.Hierarchical, cfg)
			fatal(err)
			res := c.RunLoad(cluster.LoadOpts{
				Clients: cl, Duration: dur, Mix: workload.QWMix,
				HitRatio: 0.5, WarmPool: 8,
			})
			p50 := ms(res.Latency.Quantile(0.5))
			label := "ledger-on"
			if ledgerOff {
				label = "ledger-off"
				sc.LedgerOffP50Ms = append(sc.LedgerOffP50Ms, p50)
				offQ += float64(res.Completed)
			} else {
				sc.LedgerOnP50Ms = append(sc.LedgerOnP50Ms, p50)
				onQ += float64(res.Completed)
			}
			secs += dur.Seconds()
			fmt.Printf("%-6d %-12s %10.1f %10.3f %10.3f\n",
				r, label, res.Throughput(), p50, ms(res.Latency.Mean()))
			c.Close()
		}
	}
	sc.OffMedianP50Ms = median(sc.LedgerOffP50Ms)
	sc.OnMedianP50Ms = median(sc.LedgerOnP50Ms)
	sc.OffQPS = offQ / (secs / 2)
	sc.OnQPS = onQ / (secs / 2)
	if sc.OffMedianP50Ms > 0 {
		sc.OverheadPct = 100 * (sc.OnMedianP50Ms/sc.OffMedianP50Ms - 1)
	}
	fmt.Printf("median p50: off=%.3fms on=%.3fms overhead=%.2f%%\n",
		sc.OffMedianP50Ms, sc.OnMedianP50Ms, sc.OverheadPct)
	return sc
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
