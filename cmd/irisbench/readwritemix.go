package main

import (
	"encoding/json"
	"fmt"
	"os"

	"irisnet/internal/cluster"
	"irisnet/internal/workload"
)

// runReadWriteMix measures how much a concurrent sensor-update stream costs
// the query path. It runs the raw engine (no simulated latency or synthetic
// service times) with several CPU slots per site, so the only thing that
// can slow queries down is synchronization against writers:
//
//   - snapshot mode (the default engine): queries read an immutable
//     copy-on-write snapshot acquired with one atomic load, so the update
//     stream should cost them almost nothing;
//   - coarse mode (site.Config.CoarseLocking): the pre-snapshot
//     reader-writer lock is reinstated and every update blocks the whole
//     query path.
//
// Results are printed and also written to BENCH_PR3.json for machines.
func runReadWriteMix() {
	header("Read/write mix — snapshot queries vs coarse locking (raw engine)")

	type modeResult struct {
		Mode              string  `json:"mode"`
		ReadOnlyQPS       float64 `json:"read_only_qps"`
		MixedQPS          float64 `json:"mixed_qps"`
		MixedOverReadOnly float64 `json:"mixed_over_read_only"`
		UpdatesPerSec     float64 `json:"updates_per_sec"`
	}
	type report struct {
		Experiment   string       `json:"experiment"`
		DurationSecs float64      `json:"duration_secs"`
		Clients      int          `json:"clients"`
		CPUSlots     int          `json:"cpu_slots"`
		UpdateRate   float64      `json:"offered_update_rate"`
		Modes        []modeResult `json:"modes"`
		// Pass is the PR acceptance condition: with snapshots, mixed
		// query throughput stays within 20% of read-only throughput.
		Pass bool `json:"pass"`
	}

	const cpuSlots = 8
	const updateRate = 2000.0

	mkCluster := func(coarse bool) *cluster.Cluster {
		c, err := cluster.New(cluster.Hierarchical, cluster.Config{
			DB:            workload.PaperSmall(),
			CPUSlots:      cpuSlots,
			CoarseLocking: coarse,
		})
		fatal(err)
		return c
	}
	sumUpdates := func(c *cluster.Cluster) int64 {
		var t int64
		for _, s := range c.Sites {
			t += s.Metrics.Updates.Value()
		}
		return t
	}
	runMode := func(name string, coarse bool) modeResult {
		// Read-only arm.
		c := mkCluster(coarse)
		ro := c.RunLoad(cluster.LoadOpts{
			Clients: *clients, Duration: *durFlag, Mix: workload.QW1, HitRatio: -1,
		})
		c.Close()
		// Mixed arm: same query load with a background update stream.
		c = mkCluster(coarse)
		before := sumUpdates(c)
		mixed := c.RunLoad(cluster.LoadOpts{
			Clients: *clients, Duration: *durFlag, Mix: workload.QW1, HitRatio: -1,
			UpdateRate: updateRate,
		})
		applied := sumUpdates(c) - before
		c.Close()
		r := modeResult{
			Mode:          name,
			ReadOnlyQPS:   ro.Throughput(),
			MixedQPS:      mixed.Throughput(),
			UpdatesPerSec: float64(applied) / mixed.Elapsed.Seconds(),
		}
		if r.ReadOnlyQPS > 0 {
			r.MixedOverReadOnly = r.MixedQPS / r.ReadOnlyQPS
		}
		return r
	}

	rep := report{
		Experiment:   "read-write-mix",
		DurationSecs: durFlag.Seconds(),
		Clients:      *clients,
		CPUSlots:     cpuSlots,
		UpdateRate:   updateRate,
	}
	fmt.Printf("%-10s %14s %12s %14s %12s\n",
		"mode", "read-only q/s", "mixed q/s", "mixed/ro", "updates/s")
	for _, m := range []struct {
		name   string
		coarse bool
	}{{"coarse", true}, {"snapshot", false}} {
		r := runMode(m.name, m.coarse)
		rep.Modes = append(rep.Modes, r)
		fmt.Printf("%-10s %14.1f %12.1f %13.2f%% %12.1f\n",
			r.Mode, r.ReadOnlyQPS, r.MixedQPS, 100*r.MixedOverReadOnly, r.UpdatesPerSec)
		if m.name == "snapshot" {
			rep.Pass = r.MixedOverReadOnly >= 0.8
		}
	}
	fmt.Printf("acceptance (snapshot mixed >= 80%% of read-only): pass=%v\n", rep.Pass)

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile("BENCH_PR3.json", buf, 0o644))
	fmt.Println("wrote BENCH_PR3.json")
}
