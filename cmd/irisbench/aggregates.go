package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"irisnet/internal/cluster"
	"irisnet/internal/metrics"
	"irisnet/internal/qeg"
	"irisnet/internal/service"
	"irisnet/internal/workload"
	"irisnet/internal/xpath"
)

// runAggregates measures in-network partial aggregation (BENCH_PR8): the
// same aggregate workload answered two ways on the same hierarchy —
//
//   - raw: the client gathers the inner query's answer fragment and folds
//     it locally (what a client must do without pushdown support);
//   - pushdown: the client sends fn(path) and the federation ships partial
//     states down the gather path instead of subtree fragments.
//
// Both arms produce bit-identical aggregate values; the comparison is the
// wire bytes per query (SimNet counts every completed call's request plus
// response payload) and the client-observed p50. Acceptance: >=10x fewer
// bytes on the wire and >=2x better p50 for the pushdown arm.
func runAggregates() {
	dur := *durFlag
	cl := *clients
	// Aggregate queries are far heavier than the point queries other
	// experiments issue: a raw city-wide gather ships ~300KB and burns
	// per-node service time at every site it touches. Past ~8 closed-loop
	// clients the site CPUs saturate and queueing delay — identical in both
	// arms — swamps the wire-cost difference the experiment measures, so the
	// client count is capped regardless of -clients.
	if cl > 8 {
		cl = 8
	}
	if *shortFlag && dur > 1200*time.Millisecond {
		// The raw arm's queries take ~0.7s each on the bandwidth-limited
		// profile, so the smoke window stays a touch wider than elsewhere.
		dur = 1200 * time.Millisecond
	}
	header(fmt.Sprintf("In-network partial aggregation (dur=%v, clients=%d)", dur, cl))

	rep := aggReport{
		Experiment:   "aggregates",
		DurationSecs: dur.Seconds(),
		Clients:      cl,
		Short:        *shortFlag,
	}

	qs := aggWorkload()
	fmt.Printf("%-12s %8s %9s %9s %14s %10s %12s %10s %10s\n",
		"arm", "queries", "p50-ms", "mean-ms", "wire-bytes", "msgs", "bytes/query", "pushdowns", "fallbacks")
	for _, pushdown := range []bool{false, true} {
		st := benchAggregateArm(dur, cl, qs, pushdown)
		rep.Arms = append(rep.Arms, st)
		fmt.Printf("%-12s %8d %9.1f %9.1f %14d %10d %12.0f %10d %10d\n",
			st.Arm, st.Queries, st.P50Ms, st.MeanMs, st.WireBytes, st.Messages,
			st.BytesPerQuery, st.Pushdowns, st.Fallbacks)
	}

	raw, push := rep.Arms[0], rep.Arms[1]
	if push.BytesPerQuery > 0 {
		rep.BytesReductionX = raw.BytesPerQuery / push.BytesPerQuery
	}
	if push.P50Ms > 0 {
		rep.P50SpeedupX = raw.P50Ms / push.P50Ms
	}
	rep.PassBytes = rep.BytesReductionX >= 10
	rep.PassP50 = rep.P50SpeedupX >= 2
	rep.Pass = rep.PassBytes && rep.PassP50

	fmt.Printf("\nacceptance: bytes/query x%.1f fewer (>=10)=%v; p50 x%.2f faster (>=2)=%v; overall pass=%v\n",
		rep.BytesReductionX, rep.PassBytes, rep.P50SpeedupX, rep.PassP50, rep.Pass)

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile("BENCH_PR8.json", buf, 0o644))
	fmt.Println("wrote BENCH_PR8.json")
}

type aggReport struct {
	Experiment      string        `json:"experiment"`
	DurationSecs    float64       `json:"duration_secs"`
	Clients         int           `json:"clients"`
	Short           bool          `json:"short"`
	Arms            []aggArmStats `json:"arms"`
	BytesReductionX float64       `json:"bytes_reduction_x"`
	P50SpeedupX     float64       `json:"p50_speedup_x"`
	PassBytes       bool          `json:"pass_bytes"`
	PassP50         bool          `json:"pass_p50"`
	Pass            bool          `json:"pass"`
}

type aggArmStats struct {
	Arm           string  `json:"arm"`
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	P50Ms         float64 `json:"p50_ms"`
	MeanMs        float64 `json:"mean_ms"`
	WireBytes     int64   `json:"wire_bytes"`
	Messages      int64   `json:"messages"`
	BytesPerQuery float64 `json:"bytes_per_query"`
	Pushdowns     int64   `json:"pushdowns"`
	Fallbacks     int64   `json:"fallbacks"`
	BytesSaved    int64   `json:"gather_bytes_saved"`
}

// aggQuery pairs an aggregate function with the inner path it folds.
type aggQuery struct {
	fn    xpath.AggFunc
	inner string
}

// aggWorkload sweeps the levels the pushdown wins at: neighborhood-wide,
// city-spanning and federation-wide aggregates over the paper-small parking
// database.
func aggWorkload() []aggQuery {
	db := workload.Build(workload.PaperSmall())
	var qs []aggQuery
	fns := []xpath.AggFunc{xpath.AggCount, xpath.AggSum, xpath.AggAvg, xpath.AggMin, xpath.AggMax}
	i := 0
	for c := 0; c < db.Cfg.Cities; c++ {
		for n := 0; n < db.Cfg.Neighborhoods; n++ {
			qs = append(qs, aggQuery{fns[i%len(fns)], db.NeighborhoodPath(c, n).String() + "/block/parkingSpace/price"})
			i++
		}
		qs = append(qs, aggQuery{fns[i%len(fns)], db.CityPath(c).String() + "/neighborhood/block/parkingSpace[available='yes']/price"})
		i++
	}
	qs = append(qs, aggQuery{xpath.AggCount,
		"/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']/city/neighborhood/block/parkingSpace[available='yes']"})
	return qs
}

func benchAggregateArm(dur time.Duration, cl int, qs []aggQuery, pushdown bool) aggArmStats {
	// Paper-calibrated service times over a WAN profile: 20ms one-way
	// latency and a 256 KiB/s (~2 Mbit) bandwidth-limited link, so shipping a subtree
	// fragment costs what it costs between sites "spread over thousands of
	// miles" while a partial-state scalar is effectively free.
	cfg := cluster.PaperCalibration(cluster.Config{DB: workload.PaperSmall()})
	cfg.Latency = 20 * time.Millisecond
	cfg.Jitter = 4 * time.Millisecond
	cfg.Bandwidth = 256 << 10
	cfg.Seed = 7
	c, err := cluster.New(cluster.Hierarchical, cfg)
	fatal(err)
	defer c.Close()

	name := "raw"
	if pushdown {
		name = "pushdown"
	}
	lat := metrics.NewHistogram(0)
	var queries, errs atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < cl; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fe := c.NewFrontend()
			for seq := 0; !stop.Load(); seq++ {
				q := qs[(id+seq)%len(qs)]
				t0 := time.Now()
				var err error
				if pushdown {
					_, err = fe.QueryAggregate(q.fn.String() + "(" + q.inner + ")")
				} else {
					err = rawClientAggregate(fe, q)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				lat.Observe(time.Since(t0))
				queries.Add(1)
			}
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()

	st := aggArmStats{
		Arm: name, Queries: queries.Load(), Errors: errs.Load(),
		P50Ms: ms(lat.Quantile(0.5)), MeanMs: ms(lat.Mean()),
		WireBytes: c.Net.BytesTotal(), Messages: c.Net.MessagesTotal(),
	}
	for _, s := range c.Sites {
		st.Pushdowns += s.Metrics.AggregatePushdowns.Value()
		st.Fallbacks += s.Metrics.AggregateFallbacks.Value()
		st.BytesSaved += s.Metrics.GatherBytesSaved.Value()
	}
	if st.Queries > 0 {
		st.BytesPerQuery = float64(st.WireBytes) / float64(st.Queries)
	}
	return st
}

// rawClientAggregate is the baseline client: fetch the raw answer fragment
// and fold it locally into the same partial state the pushdown ships. The
// fold's result is computed (not discarded early) so the arm pays the full
// client-side cost a real no-pushdown client would.
func rawClientAggregate(fe *service.Frontend, q aggQuery) error {
	frag, err := fe.QueryFragment(q.inner)
	if err != nil {
		return err
	}
	partial, err := qeg.ComputeAggregate(frag, q.inner, fe.Clock)
	if err != nil {
		return err
	}
	partial.Final(q.fn)
	return nil
}
