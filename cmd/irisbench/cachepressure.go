package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"irisnet/internal/cluster"
	"irisnet/internal/fragment"
	"irisnet/internal/workload"
	"irisnet/internal/xmldb"
)

// runCachePressure measures bounded query-driven caching (BENCH_PR5): a
// caching hierarchy with every query forced through the root site, driven by
// a skewed block-query workload (80% of queries over the hottest 20% of
// blocks). The first arm runs with an unbounded cache and establishes how
// many bytes the root accumulates; the remaining arms re-run the same
// workload with CacheBudgetBytes at descending fractions of that footprint.
//
// Acceptance (the paper's Figure 9 shape — hit ratio vs cache size):
//   - bounded: in every budgeted arm the sampled cache size never exceeds
//     the budget by more than one local-information unit;
//   - graceful: the hit rate declines with the budget in an orderly way —
//     budgets holding at least half the unbounded footprint keep most of
//     the unbounded hit rate, and budgets down to a quarter of it still
//     produce hits (no cliff, no thrash).
//
// Results are printed and written to BENCH_PR5.json for machines.
func runCachePressure() {
	dur := *durFlag
	cl := *clients
	if *shortFlag {
		if dur > 700*time.Millisecond {
			dur = 700 * time.Millisecond
		}
		if cl > 8 {
			cl = 8
		}
	}
	header(fmt.Sprintf("Bounded cache: hit rate vs budget (dur=%v, clients=%d)", dur, cl))

	rep := cachePressureReport{
		Experiment:   "cache-pressure",
		DurationSecs: dur.Seconds(),
		Clients:      cl,
		Short:        *shortFlag,
	}

	fmt.Printf("%-12s %12s %8s %9s %9s %10s %12s %12s\n",
		"arm", "budget", "queries", "p50-ms", "hit%", "evictions", "max-bytes", "final-bytes")
	full := runCacheArm(dur, cl, 0)
	rep.UnboundedBytes = full.MaxCacheBytes
	rep.MaxUnitBytes = full.maxUnit
	rep.Arms = append(rep.Arms, full)

	for _, frac := range []float64{0.75, 0.50, 0.25, 0.10} {
		budget := int64(frac * float64(rep.UnboundedBytes))
		rep.Arms = append(rep.Arms, runCacheArm(dur, cl, budget))
	}

	rep.PassBounded = true
	for _, a := range rep.Arms {
		if !a.BoundOK {
			rep.PassBounded = false
		}
	}
	// Graceful, no-cliff degradation: the curve declines in order (within a
	// small tolerance for run noise), budgets holding at least half the
	// unbounded footprint keep >=60% of the unbounded hit rate, and budgets
	// down to a quarter of it still produce hits at all. A caching bug that
	// thrashes or evicts hot data (a cliff) fails the half-budget check; a
	// broken hit path fails the quarter-budget one.
	rep.PassGraceful = true
	fullRate := rep.Arms[0].HitRatePct
	for i := 1; i < len(rep.Arms); i++ {
		a := rep.Arms[i]
		if a.HitRatePct > rep.Arms[i-1].HitRatePct+10 {
			rep.PassGraceful = false // smaller cache, better hit rate: bogus accounting
		}
		if 2*a.BudgetBytes >= rep.UnboundedBytes && a.HitRatePct < 0.6*fullRate {
			rep.PassGraceful = false
		}
		if 4*a.BudgetBytes >= rep.UnboundedBytes && a.HitRatePct <= 0 {
			rep.PassGraceful = false
		}
	}
	rep.Pass = rep.PassBounded && rep.PassGraceful

	fmt.Printf("\nacceptance: bounded (max <= budget + one unit of %d B) = %v; "+
		"graceful degradation (ordered decline, no cliff) = %v\n",
		rep.MaxUnitBytes, rep.PassBounded, rep.PassGraceful)
	fmt.Printf("overall pass=%v\n", rep.Pass)

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile("BENCH_PR5.json", buf, 0o644))
	fmt.Println("wrote BENCH_PR5.json")
}

type cachePressureReport struct {
	Experiment     string          `json:"experiment"`
	DurationSecs   float64         `json:"duration_secs"`
	Clients        int             `json:"clients"`
	Short          bool            `json:"short"`
	UnboundedBytes int64           `json:"unbounded_cache_bytes"`
	MaxUnitBytes   int64           `json:"max_unit_bytes"`
	Arms           []cacheArmStats `json:"arms"`
	PassBounded    bool            `json:"pass_bounded"`
	PassGraceful   bool            `json:"pass_graceful"`
	Pass           bool            `json:"pass"`
}

type cacheArmStats struct {
	Arm             string  `json:"arm"`
	BudgetBytes     int64   `json:"budget_bytes"`
	Queries         int64   `json:"queries"`
	Errors          int64   `json:"errors"`
	P50Ms           float64 `json:"p50_ms"`
	HitRatePct      float64 `json:"hit_rate_pct"`
	Evictions       int64   `json:"evictions"`
	MaxCacheBytes   int64   `json:"max_cache_bytes"`
	FinalCacheBytes int64   `json:"final_cache_bytes"`
	BoundOK         bool    `json:"bound_ok"`

	maxUnit int64
}

// maxLocalInfoUnit is the size of the largest single local-information unit
// in the database — the budget overshoot the accounting bound allows.
func maxLocalInfoUnit(db *workload.DB) int64 {
	var max int64
	db.Doc.Walk(func(n *xmldb.Node) bool {
		if n.ID() != "" || n.Parent == nil {
			if b := int64(fragment.LocalInfoBytes(n)); b > max {
				max = b
			}
		}
		return true
	})
	return max
}

// runCacheArm runs the skewed workload once with the given per-site budget
// (0 = unbounded) and reports hit rate, evictions and the cache-size bound.
func runCacheArm(dur time.Duration, cl int, budget int64) cacheArmStats {
	cfg := cluster.Config{
		DB:      workload.PaperSmall(),
		Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
		Seed: 7, Caching: true, ForceEntry: cluster.RootSiteName,
		CacheBudgetBytes: budget,
	}
	c, err := cluster.New(cluster.Hierarchical, cfg)
	fatal(err)
	defer c.Close()
	db := c.DB

	maxUnit := maxLocalInfoUnit(db)

	// Sample every caching site's published cache size while the load runs.
	var (
		sampleMu sync.Mutex
		maxBytes int64
		stop     = make(chan struct{})
		done     = make(chan struct{})
	)
	go func() {
		defer close(done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				for _, s := range c.Sites {
					if b := int64(s.CacheBytes()); b > 0 {
						sampleMu.Lock()
						if b > maxBytes {
							maxBytes = b
						}
						sampleMu.Unlock()
					}
				}
			}
		}
	}()

	nBlocks := db.Cfg.Cities * db.Cfg.Neighborhoods * db.Cfg.Blocks
	hot := nBlocks / 5
	if hot == 0 {
		hot = 1
	}
	queries, errs, lat := closedLoop(c, cl, dur, func(client, seq int) string {
		i := client*7919 + seq*104729
		var b int
		if i%100 < 80 {
			b = (i / 100) % hot // hot 20% of blocks take 80% of queries
		} else {
			b = hot + (i/100)%(nBlocks-hot)
		}
		ci := b % db.Cfg.Cities
		n := (b / db.Cfg.Cities) % db.Cfg.Neighborhoods
		blk := (b / (db.Cfg.Cities * db.Cfg.Neighborhoods)) % db.Cfg.Blocks
		return db.BlockQuery(ci, n, blk)
	})
	close(stop)
	<-done

	st := cacheArmStats{
		Arm: "unbounded", BudgetBytes: budget,
		Queries: queries, Errors: errs, P50Ms: ms(lat.Quantile(0.5)),
		maxUnit: maxUnit,
	}
	if budget > 0 {
		st.Arm = fmt.Sprintf("budget-%dK", budget/1024)
	}
	// Hit rate at the forced entry point (the paper's Figure 9 metric: a
	// hit means the root answered entirely from owned+cached data).
	root := c.Sites[cluster.RootSiteName]
	hits, misses := root.Metrics.CacheHits.Value(), root.Metrics.CacheMisses.Value()
	if hits+misses > 0 {
		st.HitRatePct = 100 * float64(hits) / float64(hits+misses)
	}
	for _, s := range c.Sites {
		st.Evictions += s.Metrics.Evictions.Value()
		if b := int64(s.CacheBytes()); b > st.FinalCacheBytes {
			st.FinalCacheBytes = b
		}
	}
	sampleMu.Lock()
	st.MaxCacheBytes = maxBytes
	sampleMu.Unlock()
	st.BoundOK = budget == 0 || st.MaxCacheBytes <= budget+maxUnit

	fmt.Printf("%-12s %12d %8d %9.1f %9.1f %10d %12d %12d\n",
		st.Arm, st.BudgetBytes, st.Queries, st.P50Ms, st.HitRatePct,
		st.Evictions, st.MaxCacheBytes, st.FinalCacheBytes)
	return st
}
