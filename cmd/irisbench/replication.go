package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"irisnet/internal/cluster"
	"irisnet/internal/metrics"
	"irisnet/internal/service"
	"irisnet/internal/trace"
	"irisnet/internal/workload"
	"irisnet/internal/xmldb"
)

// runReplication measures owner-push replication with read scale-out
// (BENCH_PR9): a Zipf hot-spot query workload concentrated on one
// neighborhood, answered three ways —
//
//   - baseline: no replicas; every hot query queues on the one owner site;
//   - replicated: three read replicas subscribe to the hot subtree and
//     freshness-tolerant queries spread over them by rendezvous hashing;
//   - failover: the owner is partitioned away mid-load, the
//     highest-watermark replica promotes itself, and the load continues.
//
// Acceptance: >=2.5x aggregate QPS with 3 replicas vs the single owner;
// freshness-strict queries route to the owner and return byte-identical
// answers to an owner-only deployment (and replica-served tolerant answers
// are byte-identical too); the owner kill loses no acknowledged update and
// no client ever observes an answer behind one it already saw (checked via
// the per-space timestamps the provenance machinery stamps on answers).
func runReplication() {
	dur := *durFlag
	cl := *clients
	if *shortFlag {
		if dur > 900*time.Millisecond {
			dur = 900 * time.Millisecond
		}
		// Keep the full client count: the replicated arm needs enough
		// closed-loop concurrency to saturate all three replicas.
	}
	header(fmt.Sprintf("Owner-push replication with read scale-out (dur=%v, clients=%d)", dur, cl))

	rep := replReport{
		Experiment:   "replication",
		DurationSecs: dur.Seconds(),
		Clients:      cl,
		Replicas:     replReplicaCount,
		Short:        *shortFlag,
	}

	fmt.Printf("%-12s %8s %8s %8s %9s %9s %12s %12s %10s\n",
		"arm", "replicas", "queries", "errors", "qps", "p50-ms", "owner-q", "replica-q", "batches")
	rep.Baseline = replThroughputArm(dur, cl, 0)
	replPrintArm(rep.Baseline)
	rep.Replicated = replThroughputArm(dur, cl, replReplicaCount)
	replPrintArm(rep.Replicated)
	if rep.Baseline.QPS > 0 {
		rep.ScaleX = rep.Replicated.QPS / rep.Baseline.QPS
	}
	rep.PassScale = rep.ScaleX >= 2.5

	rep.StrictChecked, rep.PassStrict = replStrictIdentity()
	rep.Failover = replFailover(dur, cl)
	rep.PassFailover = rep.Failover.Errors == 0 &&
		rep.Failover.LostUpdates == 0 &&
		rep.Failover.TsRegressions == 0 &&
		rep.Failover.ReplicaServed > 0 &&
		rep.Failover.UpdatesAcked > 0
	rep.Pass = rep.PassScale && rep.PassStrict && rep.PassFailover

	fmt.Printf("\nacceptance: qps x%.2f with %d replicas (>=2.5)=%v; strict/replica byte-identity over %d checks=%v\n",
		rep.ScaleX, replReplicaCount, rep.PassScale, rep.StrictChecked, rep.PassStrict)
	fmt.Printf("failover: promoted=%s acked=%d lost=%d ts-regressions=%d errors=%d replica-served=%d pass=%v\n",
		rep.Failover.Promoted, rep.Failover.UpdatesAcked, rep.Failover.LostUpdates,
		rep.Failover.TsRegressions, rep.Failover.Errors, rep.Failover.ReplicaServed, rep.PassFailover)
	fmt.Printf("overall pass=%v\n", rep.Pass)

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile("BENCH_PR9.json", buf, 0o644))
	fmt.Println("wrote BENCH_PR9.json")
}

const (
	replHotCity      = 0
	replHotNB        = 0
	replReplicaCount = 3
	// replMaxLagSec is the lag bound replicas register with. The tolerant
	// workload queries carry no freshness conjunct (tolerance +Inf), so any
	// registered bound admits them; strict queries ignore it entirely.
	replMaxLagSec = 3600.0
	// replFlush is the owner flush cadence: steady-state replication lag is
	// about one interval plus one hop.
	replFlush = 2 * time.Millisecond
)

type replReport struct {
	Experiment    string            `json:"experiment"`
	DurationSecs  float64           `json:"duration_secs"`
	Clients       int               `json:"clients"`
	Replicas      int               `json:"replicas"`
	Short         bool              `json:"short"`
	Baseline      replArmStats      `json:"baseline"`
	Replicated    replArmStats      `json:"replicated"`
	ScaleX        float64           `json:"qps_scale_x"`
	PassScale     bool              `json:"pass_scale"`
	StrictChecked int               `json:"strict_checks"`
	PassStrict    bool              `json:"pass_strict_identity"`
	Failover      replFailoverStats `json:"failover"`
	PassFailover  bool              `json:"pass_failover"`
	Pass          bool              `json:"pass"`
}

type replArmStats struct {
	Arm            string  `json:"arm"`
	Replicas       int     `json:"replicas"`
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	QPS            float64 `json:"qps"`
	P50Ms          float64 `json:"p50_ms"`
	OwnerQueries   int64   `json:"owner_queries"`
	ReplicaQueries int64   `json:"replica_queries"`
	BatchesApplied int64   `json:"replica_batches_applied"`
	UpdatesAcked   int     `json:"updates_acked"`
}

type replFailoverStats struct {
	Promoted          string  `json:"promoted"`
	PromotedWatermark float64 `json:"promoted_watermark"`
	Queries           int64   `json:"queries"`
	Errors            int64   `json:"errors"`
	UpdatesAcked      int     `json:"updates_acked"`
	LostUpdates       int     `json:"lost_updates"`
	TsRegressions     int64   `json:"ts_regressions"`
	ReplicaServed     int64   `json:"replica_served_sampled"`
}

// replCluster builds the hierarchical cluster with nReplicas read replicas
// of the hot neighborhood. The DNS TTL is kept short so failover repoints
// resolver caches within the run.
func replCluster(nReplicas int) (*cluster.Cluster, []string) {
	cfg := cluster.PaperCalibration(cluster.Config{DB: workload.PaperSmall()})
	cfg.Seed = 7
	cfg.DNSTTL = 50 * time.Millisecond
	cfg.ReplicaFlushInterval = replFlush
	cfg.CallTimeout = 250 * time.Millisecond
	cfg.QueryTimeout = 2 * time.Second
	c, err := cluster.New(cluster.Hierarchical, cfg)
	fatal(err)
	hot := c.DB.NeighborhoodPath(replHotCity, replHotNB)
	owner := c.Sites[cluster.NBSiteName(replHotCity, replHotNB)]
	var names []string
	for i := 1; i <= nReplicas; i++ {
		name := fmt.Sprintf("replica-%d", i)
		_, err := c.AddReplicaSite(name)
		fatal(err)
		fatal(owner.AddReadReplica(hot, name, replMaxLagSec))
		names = append(names, name)
	}
	return c, names
}

// replHotKeys is the hot-spot key space: distinct query texts over the hot
// neighborhood's blocks (the rendezvous hash pins each text to one
// replica, so distinct texts are what spreads load). All are
// freshness-tolerant: no consistency conjunct means tolerance +Inf.
func replHotKeys(db *workload.DB) []string {
	var qs []string
	for b := 0; b < db.Cfg.Blocks; b++ {
		qs = append(qs, db.BlockQuery(replHotCity, replHotNB, b))
		qs = append(qs, db.TwoBlockQuery(replHotCity, replHotNB, b, (b+1)%db.Cfg.Blocks))
	}
	return qs
}

// replNewZipf shapes hot-key popularity: a clear hot spot (the top key
// draws ~9% of hot traffic, five times its uniform share) without being so
// degenerate that a single key's rendezvous placement decides the whole
// experiment.
func replNewZipf(rng *rand.Rand, nKeys int) *rand.Zipf {
	return rand.NewZipf(rng, 1.05, 4, uint64(nKeys-1))
}

// replUpdater drives sensor updates at the hot neighborhood's spaces
// through the normal resolve-then-send path, retrying failures (a dead
// owner) until the registry repoints. A globally increasing sequence is
// written as the price field; acked records the last acknowledged value
// per path, the ground truth for the zero-loss check.
type replUpdater struct {
	fe       *service.Frontend
	paths    []xmldb.IDPath
	interval time.Duration

	seq   int
	mu    sync.Mutex
	acked map[string]int
}

func newReplUpdater(c *cluster.Cluster, interval time.Duration) *replUpdater {
	hotPrefix := c.DB.NeighborhoodPath(replHotCity, replHotNB).Key() + "/"
	var paths []xmldb.IDPath
	for _, p := range c.DB.SpacePaths {
		if strings.HasPrefix(p.Key(), hotPrefix) {
			paths = append(paths, p)
		}
		if len(paths) == 24 {
			break
		}
	}
	return &replUpdater{fe: c.NewFrontend(), paths: paths, interval: interval,
		acked: map[string]int{}}
}

// run loops until stop closes; it survives owner failure by retrying.
func (u *replUpdater) run(stop <-chan struct{}) {
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		p := u.paths[i%len(u.paths)]
		u.seq++
		v := u.seq
		fields := map[string]string{"available": "yes", "price": strconv.Itoa(v)}
		for {
			if err := u.fe.Update(p, fields, nil); err == nil {
				break
			}
			select {
			case <-stop:
				return // never acked; not recorded
			case <-time.After(10 * time.Millisecond):
			}
		}
		u.mu.Lock()
		u.acked[p.Key()] = v
		u.mu.Unlock()
		time.Sleep(u.interval)
	}
}

func (u *replUpdater) ackedSnapshot() map[string]int {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make(map[string]int, len(u.acked))
	for k, v := range u.acked {
		out[k] = v
	}
	return out
}

// verifyAcked queries every acknowledged path through fe and counts paths
// whose stored price does not match the last acked sequence.
func verifyAcked(fe *service.Frontend, acked map[string]int) (lost int) {
	for key, want := range acked {
		nodes, err := fe.Query(key)
		if err != nil || len(nodes) != 1 {
			lost++
			continue
		}
		price := nodes[0].ChildNamed("price")
		if price == nil || price.Text != strconv.Itoa(want) {
			lost++
		}
	}
	return lost
}

// replThroughputArm runs the Zipf hot-spot closed loop against a cluster
// with the given replica count and reports aggregate throughput.
func replThroughputArm(dur time.Duration, cl, nReplicas int) replArmStats {
	c, replicas := replCluster(nReplicas)
	defer c.Close()
	hotKeys := replHotKeys(c.DB)

	// The sensor-update stream runs in both arms: the owner absorbs writes
	// (and, in the replicated arm, streams the deltas) while reads scale
	// out. ~5ms between updates puts the write load in the regime of the
	// paper's per-OA update rates.
	upd := newReplUpdater(c, 5*time.Millisecond)
	stopU := make(chan struct{})
	var wgU sync.WaitGroup
	wgU.Add(1)
	go func() { defer wgU.Done(); upd.run(stopU) }()

	lat := metrics.NewHistogram(0)
	var queries, errs atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < cl; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fe := c.NewFrontend()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			zipf := replNewZipf(rng, len(hotKeys))
			for !stop.Load() {
				q := replNextQuery(c.DB, rng, zipf, hotKeys)
				t0 := time.Now()
				if _, err := fe.Query(q); err != nil {
					errs.Add(1)
					continue
				}
				lat.Observe(time.Since(t0))
				queries.Add(1)
			}
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	close(stopU)
	wgU.Wait()

	name := "baseline"
	if nReplicas > 0 {
		name = "replicated"
	}
	st := replArmStats{
		Arm: name, Replicas: nReplicas,
		Queries: queries.Load(), Errors: errs.Load(),
		QPS:          float64(queries.Load()) / dur.Seconds(),
		P50Ms:        ms(lat.Quantile(0.5)),
		OwnerQueries: c.Sites[cluster.NBSiteName(replHotCity, replHotNB)].Metrics.Queries.Value(),
		UpdatesAcked: len(upd.ackedSnapshot()),
	}
	for _, r := range replicas {
		st.ReplicaQueries += c.Sites[r].Metrics.Queries.Value()
		st.BatchesApplied += c.Sites[r].Metrics.ReplicaBatchesApplied.Value()
	}
	return st
}

// replNextQuery draws the next query: 90% Zipf over the hot key space,
// 10% uniform over the cold neighborhoods.
func replNextQuery(db *workload.DB, rng *rand.Rand, zipf *rand.Zipf, hotKeys []string) string {
	if rng.Intn(100) < 90 {
		return hotKeys[int(zipf.Uint64())]
	}
	idx := rng.Intn(db.Cfg.Cities*db.Cfg.Neighborhoods-1) + 1 // skip (0,0)
	return db.BlockQuery(idx/db.Cfg.Neighborhoods, idx%db.Cfg.Neighborhoods, rng.Intn(db.Cfg.Blocks))
}

func replPrintArm(st replArmStats) {
	fmt.Printf("%-12s %8d %8d %8d %9.1f %9.1f %12d %12d %10d\n",
		st.Arm, st.Replicas, st.Queries, st.Errors, st.QPS, st.P50Ms,
		st.OwnerQueries, st.ReplicaQueries, st.BatchesApplied)
}

// replStrictIdentity checks the routing and byte-identity contract on
// quiescent data: strict queries (a consistency conjunct outside the
// time-invariant subset) route to the owner; tolerant queries route to a
// replica; and both return byte-identical answers to the same query on a
// deployment with no replicas at all.
func replStrictIdentity() (checked int, pass bool) {
	withReps, replicas := replCluster(replReplicaCount)
	defer withReps.Close()
	ownerOnly, _ := replCluster(0)
	defer ownerOnly.Close()

	isReplica := map[string]bool{}
	for _, r := range replicas {
		isReplica[r] = true
	}
	ownerName := cluster.NBSiteName(replHotCity, replHotNB)
	fe := withReps.NewFrontend()
	feRef := ownerOnly.NewFrontend()

	pass = true
	for b := 0; b < withReps.DB.Cfg.Blocks; b++ {
		tolerant := withReps.DB.BlockQuery(replHotCity, replHotNB, b)
		// @ts compared against an absolute time is outside the
		// time-invariant subset: tolerance 0, owner-only.
		strict := tolerant + "[@ts >= 0]"

		if entry, _, err := fe.RouteOf(strict); err != nil || entry != ownerName {
			fmt.Printf("  STRICT ROUTE FAIL: %q -> %q (%v)\n", strict, entry, err)
			pass = false
		}
		entry, _, err := fe.RouteOf(tolerant)
		if err != nil || !isReplica[entry] {
			fmt.Printf("  TOLERANT ROUTE FAIL: %q -> %q (%v)\n", tolerant, entry, err)
			pass = false
		}
		for _, q := range []string{strict, tolerant} {
			got, err := replCanonAnswer(fe, q)
			if err != nil {
				fmt.Printf("  QUERY FAIL: %q: %v\n", q, err)
				pass = false
				continue
			}
			want, err := replCanonAnswer(feRef, q)
			if err != nil {
				fatal(err)
			}
			if got != want {
				fmt.Printf("  BYTE-IDENTITY FAIL: %q\n", q)
				pass = false
			}
			checked++
		}
	}
	fmt.Printf("strict/tolerant identity: %d answers compared against owner-only deployment, pass=%v\n", checked, pass)
	return checked, pass
}

// replCanonAnswer renders a query's answer as sorted canonical XML, the
// byte-identity comparison key.
func replCanonAnswer(fe *service.Frontend, q string) (string, error) {
	nodes, err := fe.Query(q)
	if err != nil {
		return "", err
	}
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Canonical())
	}
	sort.Strings(out)
	return strings.Join(out, "\n"), nil
}

// replFailover kills the hot owner mid-load and promotes the
// highest-watermark replica. Update acks are drained to the replica tier
// before the kill (bounding async-tail loss at zero for the gate; steady
// state it is one flush interval), queries never pause, and every client
// tracks per-space answer timestamps to prove no answer went backwards in
// time across the promotion.
func replFailover(dur time.Duration, cl int) replFailoverStats {
	phase := dur / 2
	if phase < 400*time.Millisecond {
		phase = 400 * time.Millisecond
	}
	c, replicas := replCluster(replReplicaCount)
	defer c.Close()
	db := c.DB
	hot := db.NeighborhoodPath(replHotCity, replHotNB)
	ownerName := cluster.NBSiteName(replHotCity, replHotNB)

	// BlockQuery keys only: parkingSpace ids are unique within one block's
	// answer, so (key, space id) identifies a sensor for the monotone check.
	var hotKeys []string
	for b := 0; b < db.Cfg.Blocks; b++ {
		hotKeys = append(hotKeys, db.BlockQuery(replHotCity, replHotNB, b))
	}

	var queries, errs, regressions, replicaServed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < cl; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fe := c.NewFrontend()
			rng := rand.New(rand.NewSource(int64(id) + 100))
			zipf := replNewZipf(rng, len(hotKeys))
			lastTS := map[string]float64{} // "query|spaceID" -> max ts seen
			for n := 0; !stop.Load(); n++ {
				q := hotKeys[int(zipf.Uint64())]
				var nodes []*xmldb.Node
				var err error
				if n%16 == 0 {
					// Sampled provenance: the answer's freshness ledger must
					// say a replica (nonzero lag behind the owner) served it.
					var ans *service.Answer
					var span *trace.Span
					ans, span, err = fe.QueryTrace(context.Background(), q)
					if err == nil {
						nodes = ans.Nodes
						if fr := trace.AggregateFreshness(span); fr != nil && fr.ReplicaLagSec > 0 {
							replicaServed.Add(1)
						}
					}
				} else {
					nodes, err = fe.Query(q)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				queries.Add(1)
				for _, sp := range nodes {
					tsText, ok := sp.Attr(xmldb.AttrTimestamp)
					if !ok {
						continue
					}
					ts, perr := strconv.ParseFloat(tsText, 64)
					if perr != nil {
						continue
					}
					k := q + "|" + sp.ID()
					if ts < lastTS[k]-1e-9 {
						regressions.Add(1)
					} else if ts > lastTS[k] {
						lastTS[k] = ts
					}
				}
			}
		}(i)
	}

	upd := newReplUpdater(c, 10*time.Millisecond)
	stopU := make(chan struct{})
	var wgU sync.WaitGroup
	wgU.Add(1)
	go func() { defer wgU.Done(); upd.run(stopU) }()

	time.Sleep(phase)

	// Pause updates and let the stream drain so every acknowledged update
	// reaches the replica tier before the owner dies.
	close(stopU)
	wgU.Wait()
	pauseClock := float64(time.Now().UnixNano()) / 1e9
	replAwaitWatermarks(c, replicas, hot, pauseClock)
	acked := upd.ackedSnapshot()

	// Kill the owner mid-query-load and promote the freshest replica.
	c.Net.Partition(ownerName)
	c.Sites[ownerName].Stop()
	promoted := ""
	bestW := -1.0
	for _, r := range replicas {
		if w, ok := c.Sites[r].ReplicaWatermark(hot); ok && w > bestW {
			promoted, bestW = r, w
		}
	}
	newOwner := c.Sites[promoted]
	fatal(newOwner.Promote(hot))
	// Surviving replicas re-subscribe to the promoted owner.
	for _, r := range replicas {
		if r != promoted {
			fatal(newOwner.AddReadReplica(hot, r, replMaxLagSec))
		}
	}

	// Zero-loss gate, immediately after promotion: every acknowledged
	// update is present at the new owner.
	feOwner := c.NewFrontend()
	feOwner.ForceEntry = promoted
	lost := verifyAcked(feOwner, acked)

	// Updates resume against the repointed registry; load never stopped.
	stopU2 := make(chan struct{})
	wgU.Add(1)
	go func() { defer wgU.Done(); upd.run(stopU2) }()
	time.Sleep(phase)
	stop.Store(true)
	wg.Wait()
	close(stopU2)
	wgU.Wait()

	// Final zero-loss check over everything acked across both phases.
	finalAcked := upd.ackedSnapshot()
	lost += verifyAcked(feOwner, finalAcked)

	return replFailoverStats{
		Promoted:          promoted,
		PromotedWatermark: bestW,
		Queries:           queries.Load(),
		Errors:            errs.Load(),
		UpdatesAcked:      len(finalAcked),
		LostUpdates:       lost,
		TsRegressions:     regressions.Load(),
		ReplicaServed:     replicaServed.Load(),
	}
}

// replAwaitWatermarks polls until every replica's watermark passes mark,
// i.e. all commits acknowledged before the pause have been applied
// everywhere.
func replAwaitWatermarks(c *cluster.Cluster, replicas []string, root xmldb.IDPath, mark float64) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok := true
		for _, r := range replicas {
			if w, has := c.Sites[r].ReplicaWatermark(root); !has || w < mark {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("replication: replicas never drained to watermark %.3f", mark))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
