package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"irisnet/internal/fragment"
	"irisnet/internal/qeg"
	"irisnet/internal/workload"
)

// runLocalEval measures the cache-conscious fragment index (BENCH_PR6,
// DESIGN.md §12): the same plans evaluated on one sealed snapshot through
// the indexed fast path and through the tree walker (the DisableIndex
// baseline the site layer exposes). Three arms cover the shapes the index
// targets: a fully specified child path, a deep descendant scan, and a
// predicate-heavy descendant scan.
//
// Acceptance (machine-checked, used as a CI gate):
//   - speedup: indexed evaluation is >=5x the walker on the two
//     descendant arms (the child-path arm is reported but ungated — its
//     answers are small, so constant costs dominate);
//   - allocation-free: the indexed selection core allocates nothing per
//     query once the index and scratch pool are warm;
//   - identical: both paths produce byte-identical answer fragments.
//
// Results are printed and written to BENCH_PR6.json for machines.
func runLocalEval() {
	reps, iters := 5, 9
	if *shortFlag {
		reps, iters = 3, 3
	}
	header(fmt.Sprintf("Local evaluation: indexed vs tree walk (reps=%d)", reps))

	db := workload.Build(workload.PaperSmall())
	if *largeFlag {
		db = workload.Build(workload.PaperLarge())
	}
	stores, _, err := fragment.Partition(db.Doc, fragment.NewAssignment("solo"))
	fatal(err)
	store := stores["solo"].Seal()
	store.Index() // build once up front; queries share it lock-free

	arms := []struct {
		name  string
		query string
		gated bool
	}{
		{"child-path", db.BlockQuery(0, 0, 0), false},
		{"deep-descendant", "/usRegion[@id='NE']//parkingSpace[available='yes']", true},
		{"predicate-heavy", "/usRegion[@id='NE']//parkingSpace[available='yes' and price>=25 and meter='2hr']", true},
	}

	rep := localEvalReport{Experiment: "local-eval", Short: *shortFlag, Reps: reps}
	fmt.Printf("%-18s %14s %14s %9s %12s %10s\n",
		"arm", "indexed-ns/op", "walker-ns/op", "speedup", "sel-allocs", "identical")
	for _, arm := range arms {
		plans, err := qeg.CompileQuery(arm.query, db.Schema)
		fatal(err)
		plan := plans[0]
		if !plan.Indexable {
			fatal(fmt.Errorf("local-eval: plan for %q is not indexable", arm.query))
		}
		if _, ok, err := qeg.IndexedMatchCount(store, plan, qeg.Options{}); err != nil || !ok {
			fatal(fmt.Errorf("local-eval: fast path declined %q (ok=%v err=%v)", arm.query, ok, err))
		}

		fastRes, err := qeg.Evaluate(store, plan, qeg.Options{})
		fatal(err)
		slowRes, err := qeg.Evaluate(store, plan, qeg.Options{NoIndex: true})
		fatal(err)
		identical := fastRes.Fragment.String() == slowRes.Fragment.String() &&
			fastRes.Nodes == slowRes.Nodes

		indexedNs := medianNsPerOp(reps, iters, func() {
			_, err := qeg.Evaluate(store, plan, qeg.Options{})
			fatal(err)
		})
		walkerNs := medianNsPerOp(reps, iters, func() {
			_, err := qeg.Evaluate(store, plan, qeg.Options{NoIndex: true})
			fatal(err)
		})
		selAllocs := testing.AllocsPerRun(100, func() {
			if _, ok, _ := qeg.IndexedMatchCount(store, plan, qeg.Options{}); !ok {
				fatal(fmt.Errorf("local-eval: fast path declined mid-measurement"))
			}
		})

		a := localEvalArm{
			Arm: arm.name, Query: arm.query, Gated: arm.gated,
			IndexedNsOp: indexedNs, WalkerNsOp: walkerNs,
			Speedup:           float64(walkerNs) / float64(indexedNs),
			SelectAllocsPerOp: selAllocs,
			Identical:         identical,
		}
		rep.Arms = append(rep.Arms, a)
		fmt.Printf("%-18s %14d %14d %8.2fx %12.1f %10v\n",
			a.Arm, a.IndexedNsOp, a.WalkerNsOp, a.Speedup, a.SelectAllocsPerOp, a.Identical)
	}

	rep.PassSpeedup, rep.PassAllocFree, rep.PassIdentical = true, true, true
	for _, a := range rep.Arms {
		if a.Gated && a.Speedup < 5 {
			rep.PassSpeedup = false
		}
		if a.SelectAllocsPerOp != 0 {
			rep.PassAllocFree = false
		}
		if !a.Identical {
			rep.PassIdentical = false
		}
	}
	rep.Pass = rep.PassSpeedup && rep.PassAllocFree && rep.PassIdentical

	fmt.Printf("\nacceptance: speedup >=5x on gated arms = %v; selection core alloc-free = %v; "+
		"answers byte-identical = %v\n", rep.PassSpeedup, rep.PassAllocFree, rep.PassIdentical)
	fmt.Printf("overall pass=%v\n", rep.Pass)

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile("BENCH_PR6.json", buf, 0o644))
	fmt.Println("wrote BENCH_PR6.json")
}

type localEvalReport struct {
	Experiment    string         `json:"experiment"`
	Short         bool           `json:"short"`
	Reps          int            `json:"reps"`
	Arms          []localEvalArm `json:"arms"`
	PassSpeedup   bool           `json:"pass_speedup"`
	PassAllocFree bool           `json:"pass_alloc_free"`
	PassIdentical bool           `json:"pass_identical"`
	Pass          bool           `json:"pass"`
}

type localEvalArm struct {
	Arm               string  `json:"arm"`
	Query             string  `json:"query"`
	Gated             bool    `json:"gated"`
	IndexedNsOp       int64   `json:"indexed_ns_per_op"`
	WalkerNsOp        int64   `json:"walker_ns_per_op"`
	Speedup           float64 `json:"speedup"`
	SelectAllocsPerOp float64 `json:"select_allocs_per_op"`
	Identical         bool    `json:"identical"`
}

// medianNsPerOp times reps batches of iters calls each and returns the
// median per-op time — medians keep a single descheduled batch from
// moving a gate.
func medianNsPerOp(reps, iters int, f func()) int64 {
	f() // warm caches, pools and the plan's compiled predicates
	samples := make([]int64, 0, reps)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		samples = append(samples, time.Since(t0).Nanoseconds()/int64(iters))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}
