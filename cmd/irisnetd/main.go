// Command irisnetd runs one IrisNet organizing agent (site) over TCP.
//
// A deployment is described by a JSON topology file shared by every daemon
// and tool:
//
//	{
//	  "service": "parking.intel-iris.net",
//	  "document": "db.xml",
//	  "sites": {
//	    "root-site":   "127.0.0.1:7001",
//	    "oakland":     "127.0.0.1:7002"
//	  },
//	  "rootOwner": "root-site",
//	  "ownership": {
//	    "/usRegion[@id='NE']/.../neighborhood[@id='Oakland']": "oakland"
//	  },
//	  "registry": "127.0.0.1:7000"
//	}
//
// One daemon also hosts the name registry (-registry), playing the DNS
// server's role; all sites and tools resolve names through it.
//
// Usage:
//
//	irisnetd -topology topo.json -site oakland [-registry] [-caching]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"irisnet/internal/deploy"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "path to the JSON topology file (required)")
		siteName = flag.String("site", "", "name of the site to run (required)")
		registry = flag.Bool("registry", false, "also host the name registry for the deployment")
		caching  = flag.Bool("caching", true, "cache query results at this site")
	)
	flag.Parse()
	if *topoPath == "" || *siteName == "" {
		flag.Usage()
		os.Exit(2)
	}
	topo, err := deploy.LoadTopology(*topoPath)
	if err != nil {
		fail(err)
	}
	node, err := deploy.StartSite(topo, *siteName, deploy.SiteOptions{
		HostRegistry: *registry,
		Caching:      *caching,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("irisnetd: site %q serving on %s (registry hosted: %v, caching: %v)\n",
		*siteName, topo.Sites[*siteName], *registry, *caching)
	owned := node.Site.OwnedPaths()
	fmt.Printf("irisnetd: owns %d IDable nodes\n", len(owned))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	node.Stop()
	fmt.Println("irisnetd: stopped")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "irisnetd:", err)
	os.Exit(1)
}
