// Command irisnetd runs one IrisNet organizing agent (site) over TCP.
//
// A deployment is described by a JSON topology file shared by every daemon
// and tool:
//
//	{
//	  "service": "parking.intel-iris.net",
//	  "document": "db.xml",
//	  "sites": {
//	    "root-site":   "127.0.0.1:7001",
//	    "oakland":     "127.0.0.1:7002"
//	  },
//	  "rootOwner": "root-site",
//	  "ownership": {
//	    "/usRegion[@id='NE']/.../neighborhood[@id='Oakland']": "oakland"
//	  },
//	  "registry": "127.0.0.1:7000"
//	}
//
// One daemon also hosts the name registry (-registry), playing the DNS
// server's role; all sites and tools resolve names through it.
//
// With -admin the daemon also serves an HTTP observability endpoint:
// /metrics (Prometheus text), /healthz, /debug/fragment (?site= selects
// one site), /debug/cluster (federated topology + counters across every
// admin listed in the topology's "admins" map), the net/http/pprof
// endpoints under /debug/pprof/, and — with -profile-interval —
// /debug/profile/latest, the newest continuous CPU-profile sample.
//
// Usage:
//
//	irisnetd -topology topo.json -site oakland [-registry] [-caching] [-admin :9090]
package main

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"irisnet/internal/deploy"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "path to the JSON topology file (required)")
		siteName  = flag.String("site", "", "name of the site to run (required)")
		registry  = flag.Bool("registry", false, "also host the name registry for the deployment")
		caching   = flag.Bool("caching", true, "cache query results at this site")
		cacheCap  = flag.Int64("cache-budget", 0, "cache memory budget in bytes (0 = unbounded); cold cached units are evicted when accounted bytes exceed it")
		adminAddr = flag.String("admin", "", "serve /metrics, /healthz, /debug/fragment, /debug/cluster and /debug/pprof on this host:port (\":0\" picks a port)")
		verbose   = flag.Bool("v", false, "log per-query debug detail (trace IDs, cache hits, fan-out)")
		noLedger  = flag.Bool("no-freshness-ledger", false, "disable per-answer provenance/staleness accounting")
		slowQuery = flag.Duration("slow-query", 0, "log a warning for queries slower than this (0 = off)")
		staleAns  = flag.Duration("stale-answer", 0, "log a warning for answers using cached data older than this (0 = off)")
		profEvery = flag.Duration("profile-interval", 0, "take a 1s continuous CPU-profile sample this often, served at /debug/profile/latest (0 = off; needs -admin)")
		dataDir   = flag.String("data-dir", "", "durable store directory; the site WALs commits and checkpoints snapshots under <data-dir>/<site> and restarts warm (empty = in-memory)")
		fsyncIvl  = flag.Duration("fsync-interval", 0, "relax WAL fsyncs to this background cadence, trading up to one interval of acked updates on power loss for throughput (0 = fsync every acked commit)")
		ckptIvl   = flag.Duration("checkpoint-interval", 0, "how often to checkpoint the snapshot and truncate the WAL (0 = default 10s; needs -data-dir)")
	)
	flag.Parse()
	if *topoPath == "" || *siteName == "" {
		flag.Usage()
		os.Exit(2)
	}
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	topo, err := deploy.LoadTopology(*topoPath)
	if err != nil {
		fail(logger, err)
	}
	node, err := deploy.StartSite(topo, *siteName, deploy.SiteOptions{
		HostRegistry:     *registry,
		Caching:          *caching,
		CacheBudgetBytes: *cacheCap,
		AdminAddr:        *adminAddr,
		Logger:           logger,

		DisableFreshnessLedger: *noLedger,
		SlowQueryThreshold:     *slowQuery,
		StaleAnswerThreshold:   *staleAns,
		ProfileInterval:        *profEvery,
		DataDir:                *dataDir,
		FsyncInterval:          *fsyncIvl,
		CheckpointInterval:     *ckptIvl,
	})
	if err != nil {
		fail(logger, err)
	}
	logger.Info("site serving",
		"site", *siteName,
		"addr", topo.Sites[*siteName],
		"registry_hosted", *registry,
		"caching", *caching,
		"cache_budget_bytes", *cacheCap,
		"data_dir", *dataDir,
		"recovery_seconds", node.Site.RecoverySeconds(),
		"owned_nodes", len(node.Site.OwnedPaths()))
	if node.AdminAddr != "" {
		paths := "/metrics /healthz /debug/fragment /debug/cluster /debug/pprof"
		if *profEvery > 0 {
			paths += " /debug/profile/latest"
		}
		logger.Info("admin endpoint serving",
			"addr", node.AdminAddr,
			"paths", paths)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	node.Stop()
	logger.Info("stopped", "site", *siteName)
}

func fail(logger *slog.Logger, err error) {
	logger.Error("startup failed", "err", err)
	os.Exit(1)
}
